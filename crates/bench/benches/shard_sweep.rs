//! Criterion benchmark: the shard-parallel store's payoff.
//!
//! Sweeps shard counts on a synchronous-WAL LSM behind a
//! [`ShardedStore`]: each shard owns an independent WAL, memtable, and
//! background worker, so a batch fans its per-shard sub-batches out to
//! worker threads and the fsyncs overlap instead of serializing.
//!
//! Greppable verdict (CI gate): `shard_sweep: PASS` when 4-shard put
//! throughput is at least 2x the single-shard baseline. Hosts without at
//! least 4 CPUs cannot overlap the shards and print `shard_sweep: SKIP`
//! instead — the sweep numbers are still reported.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gadget_kv::{ShardedStore, StateStore, StoreError};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

/// Shard counts swept by the criterion group.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Batch size: large enough that every shard gets a meaningful
/// sub-batch at 8 shards.
const BATCH: usize = 256;

/// A `shards`-way sharded sync-WAL LSM; each shard flushes into its own
/// subdirectory. Memtables are large enough that flushes never fire
/// during the sweep: the fsync path is what's measured.
fn sharded_sync_lsm(tag: &str, shards: usize) -> (PathBuf, ShardedStore) {
    let base = std::env::temp_dir().join(format!(
        "gadget-shard-sweep-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before epoch")
            .as_nanos()
    ));
    let factory_base = base.clone();
    let store = ShardedStore::from_factory(shards, move |shard| {
        let dir = factory_base.join(format!("shard-{shard}"));
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        let cfg = LsmConfig {
            wal_sync: true,
            memtable_bytes: 64 << 20,
            ..LsmConfig::paper_rocksdb()
        }
        .with_shard_id(shard as u64);
        Ok(Arc::new(LsmStore::open(&dir, cfg)?) as Arc<dyn StateStore>)
    })
    .expect("open sharded lsm");
    (base, store)
}

fn put_batch(next: &mut u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            *next += 1;
            Op::put((*next % 100_000).to_be_bytes().to_vec(), vec![7u8; 256])
        })
        .collect()
}

fn bench_shard_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_sweep");
    group.sample_size(10);
    for &shards in &SHARD_SWEEP {
        let (dir, store) = sharded_sync_lsm(&format!("s{shards}"), shards);
        let mut next = 0u64;
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_function(format!("lsm_sync_put_shards_{shards}"), |b| {
            b.iter(|| {
                let ops = put_batch(&mut next, BATCH);
                store.apply_batch(&ops).expect("batch");
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Times pre-materialized ops through `apply_batch` in `BATCH`-sized
/// chunks, in ns/op.
fn batched_ns_per_op(store: &dyn StateStore, ops: &[Op]) -> f64 {
    let started = Instant::now();
    for chunk in ops.chunks(BATCH) {
        store.apply_batch(chunk).expect("batch");
    }
    started.elapsed().as_nanos() as f64 / ops.len() as f64
}

fn verdict_shard_speedup(_c: &mut Criterion) {
    // Paired rounds interleaved single/quad, min per side: a frequency
    // or scheduler shift mid-run cannot bias one side (same structure as
    // batch_sweep's group-commit verdict).
    const OPS_PER_ROUND: usize = 2_048;
    const ROUNDS: usize = 5;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (dir1, single) = sharded_sync_lsm("verdict1", 1);
    let (dir4, quad) = sharded_sync_lsm("verdict4", 4);
    let mut next = 0u64;
    let mut single_ns = f64::INFINITY;
    let mut quad_ns = f64::INFINITY;
    for _ in 0..ROUNDS {
        let ops = put_batch(&mut next, OPS_PER_ROUND);
        single_ns = single_ns.min(batched_ns_per_op(&single, &ops));
        quad_ns = quad_ns.min(batched_ns_per_op(&quad, &ops));
    }
    // One extra instrumented round per side feeds the perf trajectory
    // (versioned run reports under results/reports/); the verdict stays
    // on the untouched min-of-rounds timing above.
    emit_bench_report(
        &single,
        put_batch(&mut next, OPS_PER_ROUND),
        "shard1-put",
        1,
    );
    emit_bench_report(&quad, put_batch(&mut next, OPS_PER_ROUND), "shard4-put", 4);
    drop(single);
    drop(quad);
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
    let ratio = single_ns / quad_ns;
    println!(
        "shard_sweep sync-WAL puts (batch {BATCH}): 1 shard {single_ns:.0} ns/op, \
         4 shards {quad_ns:.0} ns/op => {ratio:.1}x on {cpus} CPU(s)"
    );
    let verdict = if ratio >= 2.0 {
        "PASS"
    } else if cpus < 4 {
        // Shards cannot overlap without cores; the sweep is informational.
        "SKIP"
    } else {
        "FAIL"
    };
    println!("shard_sweep: {verdict} ({ratio:.1}x vs 2x target at 4 shards, {cpus} CPU(s))");
}

/// Replays `ops` through `apply_batch` in `BATCH`-sized chunks with
/// per-chunk timing folded into a latency histogram, then writes the
/// run as a `gadget-report` document for cross-revision comparison.
fn emit_bench_report(store: &dyn StateStore, ops: Vec<Op>, workload: &str, shards: usize) {
    let mut m = gadget_replay::Measured::new();
    let started = Instant::now();
    for chunk in ops.chunks(BATCH) {
        let t = Instant::now();
        store.apply_batch(chunk).expect("batch");
        let ns = (t.elapsed().as_nanos() as u64) / chunk.len() as u64;
        for _ in chunk {
            m.overall.record(ns);
            m.per_op[1].record(ns); // the put slot (OpType::ALL order)
        }
        m.executed += chunk.len() as u64;
    }
    let mut run = m.to_report(store.name(), workload, started.elapsed().as_secs_f64());
    run.store = "lsm-sync-sharded".to_string();
    gadget_bench::emit_run_report(
        &gadget_bench::bench_reports_dir(),
        "shard_sweep",
        "lsm-sync-sharded",
        &run,
        store.metrics(),
        &format!("shard_sweep workload={workload} shards={shards} batch={BATCH}"),
        BATCH,
    );
}

criterion_group!(benches, bench_shard_counts, verdict_shard_speedup);
criterion_main!(benches);
