//! Ablation: native lazy merge vs read-modify-write emulation on the LSM.
//!
//! This isolates the design choice DESIGN.md §8 calls out: RocksDB wins
//! holistic windows *because* of the merge operator. We run the same
//! bucket-append workload twice on the same store class — once with
//! `merge`, once emulated as `get` + concatenate + `put` — and expect the
//! emulation to collapse as buckets grow.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gadget_bench::build_store;

const APPENDS: usize = 500;
const OPERAND: [u8; 64] = [5u8; 64];

fn native_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_bucket_append");
    group.sample_size(20);
    group.bench_function("native_merge", |b| {
        b.iter_batched(
            || build_store("rocksdb-class", 256),
            |inst| {
                for _ in 0..APPENDS {
                    inst.store.merge(b"bucket", &OPERAND).expect("merge");
                }
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("rmw_emulation", |b| {
        b.iter_batched(
            || build_store("rocksdb-class", 256),
            |inst| {
                for _ in 0..APPENDS {
                    let mut v = inst
                        .store
                        .get(b"bucket")
                        .expect("get")
                        .map(|b| b.to_vec())
                        .unwrap_or_default();
                    v.extend_from_slice(&OPERAND);
                    inst.store.put(b"bucket", &v).expect("put");
                }
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, native_merge);
criterion_main!(benches);
