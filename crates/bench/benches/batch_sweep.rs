//! Criterion benchmark: the batch-aware pipeline's payoff.
//!
//! Sweeps `apply_batch` batch sizes on a synchronous-WAL LSM, where group
//! commit amortizes one fsync over the whole batch — the dominant cost of
//! durable writes. Also checks batch-size-1 parity: issuing ops through
//! `apply_batch` one at a time must cost the same as calling the per-op
//! methods directly, for every store in the zoo.
//!
//! Greppable verdict (CI gate): `batch_sweep: PASS` when batch-64 put
//! throughput on the sync-WAL LSM is at least 5x the op-by-op baseline.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gadget_bench::all_stores;
use gadget_kv::StateStore;
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

/// A sync-WAL LSM in a fresh temp dir. The memtable is large enough that
/// flushes never fire during the sweep: the fsync path is what's measured.
fn sync_lsm(tag: &str) -> (PathBuf, LsmStore) {
    let dir = std::env::temp_dir().join(format!(
        "gadget-batch-sweep-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cfg = LsmConfig {
        wal_sync: true,
        memtable_bytes: 256 << 20,
        ..LsmConfig::paper_rocksdb()
    };
    let store = LsmStore::open(&dir, cfg).expect("open lsm");
    (dir, store)
}

fn put_batch(next: &mut u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            *next += 1;
            Op::put((*next % 100_000).to_be_bytes().to_vec(), vec![7u8; 256])
        })
        .collect()
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(10);
    for &batch in &[1usize, 8, 64, 512] {
        let (dir, store) = sync_lsm(&format!("b{batch}"));
        let mut next = 0u64;
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(format!("lsm_sync_put_batch_{batch}"), |b| {
            b.iter(|| {
                let ops = put_batch(&mut next, batch);
                store.apply_batch(&ops).expect("batch");
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Times pre-materialized put ops issued one call per op, in ns/op.
/// Both measurement sides share prebuilt ops so op materialization
/// (key/value allocation) stays out of the comparison.
fn serial_ns_per_op(store: &dyn StateStore, ops: &[Op]) -> f64 {
    let started = Instant::now();
    for op in ops {
        store.put(op.key(), op.payload()).expect("put");
    }
    started.elapsed().as_nanos() as f64 / ops.len() as f64
}

/// Times the same pre-materialized ops issued through `apply_batch` in
/// `batch`-sized chunks, in ns/op.
fn batched_ns_per_op(store: &dyn StateStore, ops: &[Op], batch: usize) -> f64 {
    let started = Instant::now();
    for chunk in ops.chunks(batch) {
        store.apply_batch(chunk).expect("batch");
    }
    started.elapsed().as_nanos() as f64 / ops.len() as f64
}

fn verdict_group_commit_speedup(_c: &mut Criterion) {
    // Paired rounds interleaved A/B, min per side: a frequency or
    // scheduler shift mid-run cannot bias one side (same structure as
    // store_micro's metrics_overhead verdict).
    const OPS_PER_ROUND: usize = 500;
    const ROUNDS: usize = 5;
    const BATCH: usize = 64;
    let (dir, store) = sync_lsm("verdict");
    let mut next = 0u64;
    let mut serial_ns = f64::INFINITY;
    let mut batched_ns = f64::INFINITY;
    for _ in 0..ROUNDS {
        let ops = put_batch(&mut next, OPS_PER_ROUND);
        serial_ns = serial_ns.min(serial_ns_per_op(&store, &ops));
        batched_ns = batched_ns.min(batched_ns_per_op(&store, &ops, BATCH));
    }
    let snap = store.metrics().unwrap_or_default();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    // One extra instrumented round per side feeds the perf trajectory:
    // the verdict above stays on the untouched min-of-rounds timing,
    // while these rounds record per-batch latencies into a versioned
    // run report under results/reports/.
    emit_bench_report(&store, put_batch(&mut next, OPS_PER_ROUND), 1, "serial-put");
    emit_bench_report(
        &store,
        put_batch(&mut next, OPS_PER_ROUND),
        BATCH,
        "batch64-put",
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let ratio = serial_ns / batched_ns;
    println!(
        "batch_sweep sync-WAL puts: op-by-op {serial_ns:.0} ns/op, \
         batch-{BATCH} {batched_ns:.0} ns/op => {ratio:.1}x \
         ({} fsyncs / {} appends)",
        counter("wal_fsyncs"),
        counter("wal_appends"),
    );
    println!(
        "batch_sweep: {} ({ratio:.1}x vs 5x target at batch {BATCH})",
        if ratio >= 5.0 { "PASS" } else { "FAIL" }
    );
}

/// Replays `ops` through `apply_batch` in `batch`-sized chunks with
/// per-chunk timing folded into a latency histogram, then writes the
/// run as a `gadget-report` document for cross-revision comparison.
fn emit_bench_report(store: &dyn StateStore, ops: Vec<Op>, batch: usize, workload: &str) {
    let mut m = gadget_replay::Measured::new();
    let started = Instant::now();
    for chunk in ops.chunks(batch) {
        let t = Instant::now();
        store.apply_batch(chunk).expect("batch");
        let ns = (t.elapsed().as_nanos() as u64) / chunk.len() as u64;
        for _ in chunk {
            m.overall.record(ns);
            m.per_op[1].record(ns); // the put slot (OpType::ALL order)
        }
        m.executed += chunk.len() as u64;
    }
    let run = m.to_report(store.name(), workload, started.elapsed().as_secs_f64());
    gadget_bench::emit_run_report(
        &gadget_bench::bench_reports_dir(),
        "batch_sweep",
        "lsm-sync",
        &run,
        store.metrics(),
        &format!("batch_sweep workload={workload} batch={batch}"),
        batch,
    );
}

fn verdict_batch_one_parity(_c: &mut Criterion) {
    // Batch size 1 must be within noise of the direct per-op calls on
    // every store: the batched pipeline may not tax unbatched runs.
    const OPS: u64 = 20_000;
    const ROUNDS: usize = 5;
    for inst in all_stores(256) {
        let mut next = 0u64;
        let mut direct = f64::INFINITY;
        let mut batch1 = f64::INFINITY;
        for _ in 0..ROUNDS {
            let ops = put_batch(&mut next, OPS as usize);
            direct = direct.min(serial_ns_per_op(inst.store.as_ref(), &ops));
            batch1 = batch1.min(batched_ns_per_op(inst.store.as_ref(), &ops, 1));
        }
        println!(
            "batch_sweep parity {}: direct {direct:.0} ns/op vs batch-1 {batch1:.0} ns/op \
             ({:+.1}%)",
            inst.label,
            (batch1 / direct - 1.0) * 100.0
        );
    }
}

criterion_group!(
    benches,
    bench_batch_sizes,
    verdict_group_commit_speedup,
    verdict_batch_one_parity
);
criterion_main!(benches);
