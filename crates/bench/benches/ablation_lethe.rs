//! Ablation: Lethe's delete persistence threshold.
//!
//! Sweeps the FADE threshold on a delete-heavy (window-expiry-like)
//! workload and measures the post-churn read cost: smaller thresholds
//! purge tombstones sooner, so reads over deleted ranges stay cheap at
//! the price of extra compaction work.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gadget_kv::StateStore;
use gadget_lsm::{LethePolicy, LsmConfig, LsmStore};

fn churned_store(threshold_ops: Option<u64>) -> (LsmStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "gadget-ablation-lethe-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cfg = LsmConfig {
        lethe: threshold_ops.map(|delete_persistence_ops| LethePolicy {
            delete_persistence_ops,
        }),
        ..LsmConfig::small()
    };
    let store = LsmStore::open(&dir, cfg).expect("open");
    // Window-expiry churn: insert panes, delete them, keep fresh traffic.
    for round in 0..20u64 {
        for k in 0..1_000u64 {
            store
                .put(&(round * 1_000 + k).to_be_bytes(), &[2u8; 64])
                .expect("put");
        }
        for k in 0..1_000u64 {
            store
                .delete(&(round * 1_000 + k).to_be_bytes())
                .expect("delete");
        }
    }
    store.compact_and_wait().expect("quiesce");
    (store, dir)
}

fn lethe_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("post_churn_read");
    group.sample_size(15);
    for (label, threshold) in [
        ("vanilla", None),
        ("lethe_500", Some(500)),
        ("lethe_5000", Some(5_000)),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || churned_store(threshold),
                |(store, dir)| {
                    // Read across the (mostly deleted) keyspace.
                    for k in (0..20_000u64).step_by(37) {
                        store.get(&k.to_be_bytes()).expect("get");
                    }
                    drop(store);
                    let _ = std::fs::remove_dir_all(dir);
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, lethe_sweep);
criterion_main!(benches);
