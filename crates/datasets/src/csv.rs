//! User-supplied event traces.
//!
//! The paper's event generator "can also work … with an existing event
//! trace like those we used in §3", fed through the input replayer
//! (§5.1). This module gives that trace a concrete interchange format:
//! CSV with columns `key,timestamp,value_size,stream,expiry,closes` (the
//! last three optional per row), so users can benchmark against their own
//! production streams without writing Rust.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use gadget_types::{Event, StreamId};

use crate::{finish, Dataset};

/// Writes a dataset's events as CSV.
pub fn save_events_csv<P: AsRef<Path>>(dataset: &Dataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "key,timestamp,value_size,stream,expiry,closes")?;
    for e in &dataset.events {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.key,
            e.timestamp,
            e.value_size,
            e.stream.0,
            e.expiry.map(|t| t.to_string()).unwrap_or_default(),
            if e.closes_key { 1 } else { 0 }
        )?;
    }
    w.flush()
}

/// Loads an event trace from CSV into a [`Dataset`] ready for the input
/// replayer. Events are (re)sorted by timestamp.
///
/// Expected columns: `key,timestamp[,value_size[,stream[,expiry[,closes]]]]`.
/// Missing optional columns default to 100-byte values on the left stream
/// with no expiry. Returns `InvalidData` on malformed rows.
pub fn load_events_csv<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let bad = |line: usize, what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("csv line {line}: {what}"),
        )
    };
    let mut events = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed.starts_with("key,")) {
            continue;
        }
        let cols: Vec<&str> = trimmed.split(',').collect();
        if cols.len() < 2 {
            return Err(bad(i, "need at least key,timestamp"));
        }
        let key: u64 = cols[0].trim().parse().map_err(|_| bad(i, "bad key"))?;
        let timestamp: u64 = cols[1]
            .trim()
            .parse()
            .map_err(|_| bad(i, "bad timestamp"))?;
        let value_size: u32 = match cols.get(2).map(|c| c.trim()) {
            Some("") | None => 100,
            Some(c) => c.parse().map_err(|_| bad(i, "bad value_size"))?,
        };
        let stream = match cols.get(3).map(|c| c.trim()) {
            Some("") | None => StreamId::LEFT,
            Some(c) => StreamId(c.parse().map_err(|_| bad(i, "bad stream"))?),
        };
        let expiry = match cols.get(4).map(|c| c.trim()) {
            Some("") | None => None,
            Some(c) => Some(c.parse().map_err(|_| bad(i, "bad expiry"))?),
        };
        let closes = match cols.get(5).map(|c| c.trim()) {
            Some("") | None => false,
            Some("0") => false,
            Some("1") => true,
            Some(other) => return Err(bad(i, &format!("bad closes flag {other}"))),
        };
        let mut event = Event::new(key, timestamp, value_size).on_stream(stream);
        event.expiry = expiry;
        event.closes_key = closes;
        events.push(event);
    }
    Ok(finish("csv", events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{borg, DatasetSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-ds-csv-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn roundtrip_preserves_events() {
        let d = borg(DatasetSpec::small().with_events(2_000));
        let path = tmp("borg.csv");
        save_events_csv(&d, &path).unwrap();
        let loaded = load_events_csv(&path).unwrap();
        assert_eq!(loaded.events, d.events);
        assert_eq!(loaded.distinct_keys, d.distinct_keys);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn minimal_two_column_rows_get_defaults() {
        let path = tmp("minimal.csv");
        std::fs::write(&path, "key,timestamp\n5,1000\n5,2000\n9,1500\n").unwrap();
        let d = load_events_csv(&path).unwrap();
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.distinct_keys, 2);
        // Sorted by timestamp with defaults applied.
        assert_eq!(d.events[1].key, 9);
        assert_eq!(d.events[0].value_size, 100);
        assert_eq!(d.events[0].stream, StreamId::LEFT);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "nonsense\n").unwrap();
        assert!(load_events_csv(&path).is_err());
        std::fs::write(&path, "1,notatime\n").unwrap();
        assert!(load_events_csv(&path).is_err());
        std::fs::write(&path, "1,10,100,0,,7\n").unwrap();
        assert!(load_events_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_trace_drives_the_replayer_and_driver() {
        use gadget_types::StreamElement;
        let path = tmp("drive.csv");
        std::fs::write(&path, "key,timestamp\n1,1000\n1,2000\n2,3000\n1,9000\n").unwrap();
        let d = load_events_csv(&path).unwrap();
        // The dataset plugs straight into the replayer machinery.
        let events: Vec<StreamElement> =
            d.events.iter().map(|e| StreamElement::Event(*e)).collect();
        assert_eq!(events.len(), 4);
        std::fs::remove_file(&path).ok();
    }
}
