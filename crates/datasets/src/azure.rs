//! Synthetic Azure VM-creation stream.

use rand::Rng;

use gadget_distrib::seeded_rng;
use gadget_distrib::{KeyDistribution, ScrambledZipfian};
use gadget_types::Event;

use crate::{finish, Dataset, DatasetSpec};

/// Events per subscription on average (4M events / ~6K subscriptions).
const EVENTS_PER_SUBSCRIPTION: u64 = 667;

/// Target mean arrival rate (4M events over ~30 days ≈ 1.5/s).
const EVENTS_PER_SEC: f64 = 1.5;

/// Generates the Azure-like stream: VM-creation events keyed by
/// `subscriptionID` with heavy-tailed subscription popularity and
/// deployment bursts (auto-scaling groups create several VMs together).
/// There are no key-closing events: subscriptions live forever, which is
/// why continuous aggregation state grows without bound on this stream.
pub fn azure(spec: DatasetSpec) -> Dataset {
    let mut rng = seeded_rng(spec.seed ^ 0xA2);
    let num_subs = (spec.events / EVENTS_PER_SUBSCRIPTION).max(32);
    let duration_ms = (spec.events as f64 / EVENTS_PER_SEC * 1_000.0) as u64;
    let mut subs = ScrambledZipfian::new(num_subs, 0.9);
    let mut events = Vec::with_capacity(spec.events as usize);

    let mut produced = 0u64;
    let mut t = 0u64;
    while produced < spec.events {
        // Deployment burst: one subscription creates several VMs at once.
        let key = 9_000_000 + subs.next_key(&mut rng);
        let burst = rng.gen_range(1..=8).min(spec.events - produced);
        for _ in 0..burst {
            t += rng.gen_range(10..400);
            events.push(Event::new(key, t, rng.gen_range(64..160)));
            produced += 1;
        }
        // Gap to the next deployment, tuned to hit the target rate.
        let mean_gap = (duration_ms as f64 / spec.events as f64 * 4.5) as u64;
        t += rng.gen_range(mean_gap / 2..mean_gap * 2 + 2);
    }

    finish("azure", events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_closing_events() {
        let d = azure(DatasetSpec::small());
        assert!(d.events.iter().all(|e| !e.closes_key && e.expiry.is_none()));
    }

    #[test]
    fn subscription_popularity_is_heavy_tailed() {
        let d = azure(DatasetSpec::small());
        let mut counts = std::collections::HashMap::new();
        for e in &d.events {
            *counts.entry(e.key).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top10: u64 = freqs.iter().take(freqs.len() / 10 + 1).sum();
        assert!(
            top10 as f64 > 0.4 * total as f64,
            "top 10% of subscriptions hold only {top10}/{total} events"
        );
    }

    #[test]
    fn arrival_rate_near_target() {
        let d = azure(DatasetSpec::benchmark());
        let rate = d.arrival_rate();
        assert!(
            (0.5..6.0).contains(&rate),
            "azure arrival rate {rate} ev/s far from ~1.5"
        );
    }
}
