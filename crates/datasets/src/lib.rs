//! Synthetic equivalents of the paper's three real-world data streams.
//!
//! The paper drives its characterization study (§3) with three public
//! traces that are not redistributable here, so this crate generates
//! streams with the documented *structural* properties instead:
//!
//! * [`borg`] — the Google cluster trace [Reiss et al.]: ~26K jobs emitting
//!   ~96 task events each (submit/schedule/evict/fail/finish), keyed by
//!   `jobID`, with strongly bursty per-job activity and a closing
//!   job-finished event. High arrival rate.
//! * [`taxi`] — the 2013 NYC TLC trip records: trips (pickup + drop-off
//!   pairs, keyed by `medallionID`) plus a second stream of fare events for
//!   joins. Rides last tens of minutes; the arrival rate is much lower than
//!   Borg's, which drives the higher delete ratios the paper reports.
//! * [`azure`] — the 2017 Azure VM workload [Cortez et al.]: VM-creation
//!   events keyed by `subscriptionID` with a heavy-tailed subscription
//!   popularity and no key-closing events.
//!
//! Every generator is deterministic for a given [`DatasetSpec`] and returns
//! events sorted by event time. Scaled-down sizes are the default so tests
//! and CI runs stay fast; pass [`DatasetSpec::full`] for paper-scale
//! streams.

use gadget_types::{Event, StreamId, Timestamp};

mod azure;
mod borg;
pub mod csv;
mod taxi;

pub use azure::azure;
pub use borg::borg;
pub use csv::{load_events_csv, save_events_csv};
pub use taxi::{taxi, taxi_with_fares};

/// Size and seed of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Approximate number of events to generate.
    pub events: u64,
    /// RNG seed; equal specs generate identical streams.
    pub seed: u64,
}

impl DatasetSpec {
    /// A small spec for unit tests (10K events).
    pub fn small() -> Self {
        DatasetSpec {
            events: 10_000,
            seed: 42,
        }
    }

    /// The default benchmark spec (200K events): large enough for locality
    /// and amplification shapes to emerge, small enough for CI.
    pub fn benchmark() -> Self {
        DatasetSpec {
            events: 200_000,
            seed: 42,
        }
    }

    /// Paper-scale spec for the given dataset name: 2.5M (borg),
    /// 1.5M (taxi incl. fares), 4M (azure).
    pub fn full(dataset: &str) -> Self {
        let events = match dataset {
            "borg" => 2_500_000,
            "taxi" => 1_500_000,
            "azure" => 4_000_000,
            _ => 1_000_000,
        };
        DatasetSpec { events, seed: 42 }
    }

    /// Returns a copy with a different event count.
    pub fn with_events(mut self, events: u64) -> Self {
        self.events = events;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated dataset: time-ordered events plus input-stream metadata
/// needed by the amplification metrics.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (`"borg"`, `"taxi"`, `"azure"`).
    pub name: &'static str,
    /// Events sorted by `timestamp` (stable for equal timestamps).
    pub events: Vec<Event>,
    /// Number of distinct event keys.
    pub distinct_keys: u64,
}

impl Dataset {
    /// Mean arrival rate in events per second of event time.
    pub fn arrival_rate(&self) -> f64 {
        if self.events.len() < 2 {
            return 0.0;
        }
        let span = self.span_ms();
        if span == 0 {
            return 0.0;
        }
        self.events.len() as f64 / (span as f64 / 1_000.0)
    }

    /// Event-time span of the stream in milliseconds.
    pub fn span_ms(&self) -> Timestamp {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.timestamp.saturating_sub(a.timestamp),
            _ => 0,
        }
    }

    /// Events belonging to one side of a two-input stream.
    pub fn side(&self, stream: StreamId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.stream == stream)
    }
}

/// Sorts events by timestamp (stable), the invariant every generator must
/// uphold before returning.
pub(crate) fn finish(name: &'static str, mut events: Vec<Event>) -> Dataset {
    events.sort_by_key(|e| e.timestamp);
    let mut keys: Vec<u64> = events.iter().map(|e| e.key).collect();
    keys.sort_unstable();
    keys.dedup();
    Dataset {
        name,
        events,
        distinct_keys: keys.len() as u64,
    }
}

/// Builds the named dataset (`"borg"`, `"taxi"`, or `"azure"`).
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, spec: DatasetSpec) -> Option<Dataset> {
    match name {
        "borg" => Some(borg(spec)),
        "taxi" => Some(taxi(spec)),
        "azure" => Some(azure(spec)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_are_sorted_and_sized() {
        for name in ["borg", "taxi", "azure"] {
            let d = by_name(name, DatasetSpec::small()).unwrap();
            assert!(!d.events.is_empty(), "{name} is empty");
            let n = d.events.len() as u64;
            assert!(
                (8_000..=13_000).contains(&n),
                "{name} generated {n} events for a 10K spec"
            );
            for w in d.events.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp, "{name} not sorted");
            }
            assert!(d.distinct_keys > 10, "{name} has too few keys");
            assert!(d.arrival_rate() > 0.0);
        }
        assert!(by_name("nope", DatasetSpec::small()).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = borg(DatasetSpec::small());
        let b = borg(DatasetSpec::small());
        assert_eq!(a.events, b.events);
        let c = borg(DatasetSpec::small().with_seed(7));
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn per_key_rates_are_ordered_like_the_paper() {
        // The paper attributes Taxi's high delete ratios to its low
        // *per-key* arrival rate: taxi rides are less frequent events than
        // job status changes (§3.2.1). Compare the mean number of events
        // per (key, 5s window) — the quantity that determines how many
        // updates a window sees before it fires.
        fn mean_per_key_window(d: &Dataset) -> f64 {
            let mut per_window = std::collections::HashMap::new();
            for e in &d.events {
                *per_window
                    .entry((e.key, e.timestamp / 5_000))
                    .or_insert(0u64) += 1;
            }
            d.events.len() as f64 / per_window.len() as f64
        }
        let borg = borg(DatasetSpec::benchmark());
        let taxi = taxi(DatasetSpec::benchmark());
        let (b, t) = (mean_per_key_window(&borg), mean_per_key_window(&taxi));
        assert!(b > 2.0 * t, "borg {b} vs taxi {t}");
    }

    #[test]
    fn spec_builders() {
        let s = DatasetSpec::small().with_events(123).with_seed(9);
        assert_eq!(s.events, 123);
        assert_eq!(s.seed, 9);
        assert_eq!(DatasetSpec::full("azure").events, 4_000_000);
    }
}
