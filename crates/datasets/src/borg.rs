//! Synthetic Google-cluster ("Borg") stream.

use rand::Rng;

use gadget_distrib::seeded_rng;
use gadget_types::{Event, StreamId};

use crate::{finish, Dataset, DatasetSpec};

/// Average task events emitted per job (2.5M events / 26K jobs ≈ 96).
const EVENTS_PER_JOB: u64 = 96;

/// Target mean arrival rate in events per second of event time.
///
/// The real trace averages ~1 event/s over 29 days but is strongly bursty;
/// we keep the average and the burstiness.
const EVENTS_PER_SEC: f64 = 1.4;

/// Generates the Borg-like stream: jobs keyed by `jobID`, each emitting a
/// heavy-tailed number of task status events in bursts, ending with a
/// closing job-finished event.
///
/// The stream is naturally two-input, mirroring the trace's task-event and
/// job-event tables: task status events arrive on [`StreamId::LEFT`] and
/// job lifecycle events (submit, finish) on [`StreamId::RIGHT`]. Joins use
/// both sides; single-input operators simply consume the merged stream.
pub fn borg(spec: DatasetSpec) -> Dataset {
    let mut rng = seeded_rng(spec.seed ^ 0xB0B6);
    let num_jobs = (spec.events / EVENTS_PER_JOB).max(8);
    let duration_ms = (spec.events as f64 / EVENTS_PER_SEC * 1_000.0) as u64;
    let mut events = Vec::with_capacity(spec.events as usize + 64);

    for job in 0..num_jobs {
        let key = 1_000_000 + job; // jobID space.
        let arrival = rng.gen_range(0..duration_ms.max(1));
        // Job submitted: a lifecycle event on the right stream.
        events.push(Event::new(key, arrival, 96).on_stream(StreamId::RIGHT));
        // Heavy-tailed event count per job (log-normal around the mean).
        let n_events =
            lognormal(&mut rng, (EVENTS_PER_JOB as f64 * 0.6).ln(), 0.9).clamp(4.0, 2_000.0) as u64;

        // Split the job's activity into bursts of ~8-16 events. Bursts are
        // what give Borg its high per-key-per-window multiplicity.
        let mut remaining = n_events;
        let mut t = arrival;
        while remaining > 0 {
            let burst = rng.gen_range(6..=16).min(remaining);
            for _ in 0..burst {
                // Task events inside a burst land within a few seconds.
                t += rng.gen_range(100..800);
                let size = rng.gen_range(80..320);
                events.push(Event::new(key, t, size));
                remaining -= 1;
            }
            // Minutes of inactivity between bursts.
            t += rng.gen_range(30_000..600_000);
        }
        // Closing job-finished lifecycle event with the job's validity
        // bound, also on the right stream.
        t += rng.gen_range(1_000..10_000);
        events.push(
            Event::new(key, t, 64)
                .on_stream(StreamId::RIGHT)
                .closing()
                .with_expiry(t),
        );
    }

    finish("borg", events)
}

/// Draws exp(N(mu, sigma)).
fn lognormal(rng: &mut rand::rngs::StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_job_has_a_closing_event() {
        let d = borg(DatasetSpec::small());
        let mut closed = std::collections::HashSet::new();
        for e in &d.events {
            if e.closes_key {
                assert!(closed.insert(e.key), "job {} closed twice", e.key);
                assert_eq!(e.expiry, Some(e.timestamp));
            }
        }
        assert_eq!(closed.len() as u64, d.distinct_keys);
    }

    #[test]
    fn jobs_are_bursty() {
        // Count events per (key, 5s window): the median active window must
        // hold several events, matching the paper's Borg delete ratios.
        let d = borg(DatasetSpec::small());
        let mut per_window = std::collections::HashMap::new();
        for e in &d.events {
            *per_window
                .entry((e.key, e.timestamp / 5_000))
                .or_insert(0u64) += 1;
        }
        let mut counts: Vec<u64> = per_window.values().copied().collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        assert!(median >= 3, "median events per key-window {median} < 3");
    }

    #[test]
    fn job_lifecycle_events_ride_the_right_stream() {
        let d = borg(DatasetSpec::small());
        let right: Vec<_> = d.side(StreamId::RIGHT).collect();
        // Two lifecycle events per job.
        assert_eq!(right.len() as u64, 2 * d.distinct_keys);
        assert!(right.iter().filter(|e| e.closes_key).count() as u64 == d.distinct_keys);
        // Task events stay on the left.
        assert!(d.side(StreamId::LEFT).all(|e| !e.closes_key));
    }

    #[test]
    fn event_count_tracks_spec() {
        let d = borg(DatasetSpec::small().with_events(50_000));
        let n = d.events.len() as u64;
        assert!((40_000..65_000).contains(&n), "generated {n}");
    }
}
