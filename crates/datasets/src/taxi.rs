//! Synthetic NYC TLC ("Taxi") streams.

use rand::Rng;

use gadget_distrib::seeded_rng;
use gadget_types::{Event, StreamId};

use crate::{finish, Dataset, DatasetSpec};

/// Trips per medallion over the stream (1M trip events ≈ 38 trips × 2
/// events × 13K medallions).
const TRIPS_PER_MEDALLION: u64 = 38;

/// Generates the Taxi stream: 1M-trip-scale pickup and drop-off events
/// plus the corresponding fare events, all keyed by `medallionID` — the
/// paper's stream is "1M taxi trips (pickup and drop-off events) and 500K
/// corresponding taxi fare events" (§3.1.1).
///
/// Trip events ride [`StreamId::LEFT`]; fare events ride
/// [`StreamId::RIGHT`] so joins see two inputs, while single-input
/// operators simply consume the merged stream. Fares for a (shared) ride
/// are reported shortly before the drop-off that bounds their validity,
/// matching the paper's continuous-join example.
pub fn taxi(spec: DatasetSpec) -> Dataset {
    finish("taxi", generate(spec))
}

/// Alias of [`taxi`]: the stream is inherently two-input.
pub fn taxi_with_fares(spec: DatasetSpec) -> Dataset {
    taxi(spec)
}

fn generate(spec: DatasetSpec) -> Vec<Event> {
    let mut rng = seeded_rng(spec.seed ^ 0x7A71);
    // Budget: each trip contributes 2 trip events and ~1.5 fare events.
    let num_medallions = (spec.events * 2 / (TRIPS_PER_MEDALLION * 7)).max(16);
    let mut events = Vec::with_capacity(spec.events as usize + 64);

    for m in 0..num_medallions {
        let key = 5_000_000 + m; // medallionID space.
                                 // Shifts start at staggered times.
        let mut t = rng.gen_range(0..30 * 60_000u64);
        for _ in 0..TRIPS_PER_MEDALLION {
            // Idle gap between trips: quick turnarounds in busy periods,
            // longer cruises otherwise.
            t += rng.gen_range(30_000..8 * 60_000);
            let pickup = t;
            // Ride duration: log-normal around ~13 minutes.
            let duration = lognormal(&mut rng, (13.0f64 * 60_000.0).ln(), 0.6)
                .clamp(60_000.0, 2.0 * 3_600_000.0) as u64;
            let dropoff = pickup + duration;
            events.push(Event::new(key, pickup, rng.gen_range(120..200)));
            events.push(
                Event::new(key, dropoff, rng.gen_range(120..200))
                    .closing()
                    .with_expiry(dropoff),
            );
            // Shared-ride fares are reported at the end of the ride,
            // shortly before the drop-off that bounds their validity.
            let num_fares = rng.gen_range(1..=2u32);
            for _ in 0..num_fares {
                let fare_ts = dropoff.saturating_sub(rng.gen_range(1..5_000)).max(pickup);
                events.push(
                    Event::new(key, fare_ts, rng.gen_range(60..120))
                        .on_stream(StreamId::RIGHT)
                        .with_expiry(dropoff),
                );
            }
            t = dropoff;
        }
    }
    events
}

/// Draws exp(N(mu, sigma)).
fn lognormal(rng: &mut rand::rngs::StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pickups_and_dropoffs_pair_up() {
        let d = taxi(DatasetSpec::small());
        let closing = d.side(StreamId::LEFT).filter(|e| e.closes_key).count();
        let opening = d.side(StreamId::LEFT).filter(|e| !e.closes_key).count();
        assert_eq!(closing, opening, "every pickup needs a drop-off");
    }

    #[test]
    fn rides_last_minutes_not_seconds() {
        // The paper notes the default 2min session gap is "too small" for
        // taxi rides: per-key gaps between consecutive events must
        // regularly exceed it (pickup to end-of-ride fare burst).
        let d = taxi(DatasetSpec::small());
        let mut last_per_key = std::collections::HashMap::new();
        let mut long_gaps = 0u64;
        let mut gaps = 0u64;
        for e in &d.events {
            if let Some(prev) = last_per_key.insert(e.key, e.timestamp) {
                gaps += 1;
                if e.timestamp - prev > 2 * 60_000 {
                    long_gaps += 1;
                }
            }
        }
        assert!(
            long_gaps as f64 > 0.3 * gaps as f64,
            "only {long_gaps}/{gaps} per-key gaps exceed the 2min session gap"
        );
    }

    #[test]
    fn fares_arrive_on_the_right_stream_during_rides() {
        let d = taxi(DatasetSpec::small());
        let fares: Vec<_> = d.side(StreamId::RIGHT).collect();
        assert!(!fares.is_empty());
        // One to two fares per trip.
        let trips = d.side(StreamId::LEFT).count() / 2;
        assert!(fares.len() >= trips && fares.len() <= 2 * trips);
        // Fares precede their validity bound (the drop-off).
        assert!(fares.iter().all(|f| f.timestamp <= f.expiry.unwrap()));
    }

    #[test]
    fn window_multiplicity_grows_with_window_length() {
        // Fig. 2's cause: larger windows capture the drop-off + fare burst
        // together, so mean events per (key, window) must grow with the
        // window length.
        let d = taxi(DatasetSpec::small());
        let mean_for = |len_ms: u64| {
            let mut per_window = std::collections::HashMap::new();
            for e in &d.events {
                *per_window
                    .entry((e.key, e.timestamp / len_ms))
                    .or_insert(0u64) += 1;
            }
            d.events.len() as f64 / per_window.len() as f64
        };
        let m1 = mean_for(1_000);
        let m60 = mean_for(60_000);
        assert!(
            m60 > m1 * 1.15,
            "window multiplicity flat: 1s {m1:.2} vs 60s {m60:.2}"
        );
        assert!(m1 < 1.6, "1s windows too dense: {m1:.2}");
    }
}
