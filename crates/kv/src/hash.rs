//! The workspace's one key-hash function.
//!
//! Routing, trace instrumentation, and the network driver all need the
//! *same* deterministic hash over key bytes: a key must land on the same
//! shard, the same replay thread, and the same connection in every
//! process that looks at it, or per-key operation order — the guarantee
//! keyed streaming state is built on — silently breaks. Before this
//! module each layer carried its own copy of FNV-1a; they agreed only by
//! convention. Now they agree by construction: everything calls
//! [`fnv1a`].

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The multiplier every layer of this workspace has always used. Note
/// it is *not* the canonical 64-bit FNV prime (`0x100_0000_01b3`) — it
/// carries an extra zero, a transcription quirk inherited from the
/// original `shard_of`. It is frozen anyway: shard layouts on disk and
/// committed baselines were produced with it, so correcting it would
/// silently re-route every key.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over `bytes`.
///
/// This is the canonical key hash: [`shard_of`](crate::shard_of) (and
/// through it the slot table, shard-affine replay, and the connection
/// fan-out in `gadget-server`) and the trace instrumentation's
/// plain-key hashing are all thin wrappers around it.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-for-byte transcription of the three historical private
    /// copies (`sharded::shard_of`'s inline loop, `instrument.rs`'s
    /// `hash_bytes`, and the server driver's key hash, which called
    /// `shard_of`). Kept here as the cross-impl equivalence oracle: if
    /// [`fnv1a`] ever drifts from what the duplicated code computed,
    /// on-disk shard layouts from older runs would silently re-route.
    fn legacy_fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    #[test]
    fn matches_every_legacy_implementation() {
        let mut keys: Vec<Vec<u8>> = vec![vec![], vec![0], vec![0xff; 32]];
        for i in 0..512u64 {
            keys.push(i.to_be_bytes().to_vec());
            keys.push(i.to_le_bytes().to_vec());
            keys.push(format!("user{i}").into_bytes());
        }
        for key in &keys {
            assert_eq!(fnv1a(key), legacy_fnv1a(key), "key {key:?}");
        }
    }

    #[test]
    fn known_vectors() {
        // Pinned outputs of the workspace's (historical, nonstandard —
        // see FNV_PRIME) variant. If these change, every existing shard
        // layout and baseline re-routes.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf74_d84c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0xf8ac_2471_f739_67e8);
    }
}
