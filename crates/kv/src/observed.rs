//! Low-overhead per-operation metrics wrapper.

use std::time::Instant;

use bytes::Bytes;
use gadget_obs::trace::Category;
use gadget_obs::{MetricsRegistry, MetricsSnapshot, Timer};
use gadget_types::{Op, OpType};

use crate::error::StoreError;
use crate::store::{apply_ops_serially, BatchResult, StateStore};

/// Per-operation-type timers, registered as `get`/`put`/`merge`/
/// `delete`/`scan` (each contributing a `<op>_calls` counter and an
/// `<op>_ns` histogram to snapshots).
#[derive(Debug, Clone)]
pub struct OpTimers {
    /// Timer around `get`.
    pub get: Timer,
    /// Timer around `put`.
    pub put: Timer,
    /// Timer around `merge`.
    pub merge: Timer,
    /// Timer around `delete`.
    pub delete: Timer,
    /// Timer around `scan`.
    pub scan: Timer,
}

impl OpTimers {
    /// Registers one timer per operation type in `registry`, sampling
    /// latency on one in `2^sample_shift` calls.
    pub fn registered(registry: &MetricsRegistry, sample_shift: u32) -> Self {
        OpTimers {
            get: registry.timer("get", sample_shift),
            put: registry.timer("put", sample_shift),
            merge: registry.timer("merge", sample_shift),
            delete: registry.timer("delete", sample_shift),
            scan: registry.timer("scan", sample_shift),
        }
    }

    /// The timer for one point-operation type.
    pub fn for_op(&self, op: OpType) -> &Timer {
        match op {
            OpType::Get => &self.get,
            OpType::Put => &self.put,
            OpType::Merge => &self.merge,
            OpType::Delete => &self.delete,
        }
    }

    /// Charges an amortized per-op latency to each op in `batch`.
    ///
    /// `total_ns` is the measured wall time of the whole batch; every op
    /// is ticked (so `<op>_calls` counters stay exact) and recorded with
    /// the batch mean, bypassing sampling — a batched run keeps per-op
    /// call counts identical to an unbatched one, while its latency
    /// histograms show amortized costs, which is the quantity batching
    /// changes.
    pub fn record_batch(&self, batch: &[Op], total_ns: u64) {
        if batch.is_empty() {
            return;
        }
        let per_op = total_ns / batch.len() as u64;
        for op in batch {
            self.for_op(op.op_type()).record_ns(per_op);
        }
    }
}

/// A store wrapper that counts every operation and samples latencies.
///
/// Unlike [`InstrumentedStore`](crate::InstrumentedStore), which records
/// a full access trace (one heap-allocated entry per operation, behind a
/// mutex), `ObservedStore` costs one relaxed atomic increment per
/// operation plus two clock reads on the sampled fraction — cheap enough
/// to leave on during benchmark runs. The default samples one in 64
/// operations, which resolves percentiles fine over the millions of
/// operations a run performs.
pub struct ObservedStore<S> {
    inner: S,
    metrics: MetricsRegistry,
    timers: OpTimers,
}

impl<S: StateStore> ObservedStore<S> {
    /// Default latency sampling: one in `2^6 = 64` operations.
    pub const DEFAULT_SAMPLE_SHIFT: u32 = 6;

    /// Wraps `inner` with the default sampling rate.
    pub fn new(inner: S) -> Self {
        ObservedStore::with_sample_shift(inner, Self::DEFAULT_SAMPLE_SHIFT)
    }

    /// Wraps `inner`, sampling latency on one in `2^sample_shift` calls
    /// (`0` times every operation).
    pub fn with_sample_shift(inner: S, sample_shift: u32) -> Self {
        let metrics = MetricsRegistry::new();
        let timers = OpTimers::registered(&metrics, sample_shift);
        ObservedStore {
            inner,
            metrics,
            timers,
        }
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: StateStore> StateStore for ObservedStore<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    // Sampled calls double as trace spans: the same one-in-2^shift
    // operations the timer clocks are recorded into the active trace
    // session (if any), so tracing adds nothing to unsampled calls.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.timers
            .get
            .time_traced(Category::OpGet, 0, || self.inner.get(key))
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.timers
            .put
            .time_traced(Category::OpPut, 0, || self.inner.put(key, value))
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.timers
            .merge
            .time_traced(Category::OpMerge, 0, || self.inner.merge(key, operand))
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.timers
            .delete
            .time_traced(Category::OpDelete, 0, || self.inner.delete(key))
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        self.timers
            .scan
            .time_traced(Category::OpScan, 0, || self.inner.scan(lo, hi))
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.inner.supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    fn durability(&self) -> crate::durability::Durability {
        self.inner.durability()
    }

    fn checkpoint(
        &self,
        dir: &std::path::Path,
    ) -> Result<crate::durability::CheckpointManifest, StoreError> {
        self.inner.checkpoint(dir)
    }

    fn restore(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.inner.restore(dir)
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.inner.internal_counters()
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        // Single-op batches go through the per-op methods so the sampled
        // timing path is byte-identical to unbatched operation.
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        let started = Instant::now();
        let out = self.inner.apply_batch(batch)?;
        self.timers
            .record_batch(batch, started.elapsed().as_nanos() as u64);
        Ok(out)
    }

    /// The wrapper's per-operation metrics merged over the inner
    /// store's own snapshot (wrapper names are `<op>_calls`/`<op>_ns`,
    /// store-internal names are plural or component-specific, so the
    /// sections coexist without collisions).
    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.inner.metrics().unwrap_or_default();
        snap.merge(&self.metrics.snapshot());
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    #[test]
    fn counts_every_operation() {
        let s = ObservedStore::new(MemStore::new());
        for i in 0..10u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in 0..7u64 {
            s.get(&i.to_be_bytes()).unwrap();
        }
        s.merge(b"m", b"x").unwrap();
        s.delete(b"m").unwrap();
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("put_calls"), Some(10));
        assert_eq!(snap.counter("get_calls"), Some(7));
        assert_eq!(snap.counter("merge_calls"), Some(1));
        assert_eq!(snap.counter("delete_calls"), Some(1));
    }

    #[test]
    fn merges_inner_store_metrics() {
        let s = ObservedStore::new(MemStore::new());
        s.put(b"k", b"v").unwrap();
        let snap = s.metrics().unwrap();
        // Inner MemStore counters survive alongside wrapper timers.
        assert_eq!(snap.counter("puts"), Some(1));
        assert_eq!(snap.gauge("live_keys"), Some(1));
        assert_eq!(snap.counter("put_calls"), Some(1));
    }

    #[test]
    fn shift_zero_records_every_latency() {
        let s = ObservedStore::with_sample_shift(MemStore::new(), 0);
        for i in 0..20u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        let snap = s.metrics().unwrap();
        assert_eq!(snap.histogram("put_ns").unwrap().count(), 20);
    }

    #[test]
    fn batch_preserves_call_counts_and_semantics() {
        let s = ObservedStore::new(MemStore::new());
        let ops = vec![
            Op::put(b"k".to_vec(), b"ab".to_vec()),
            Op::merge(b"k".to_vec(), b"cd".to_vec()),
            Op::get(b"k".to_vec()),
            Op::delete(b"x".to_vec()),
        ];
        let out = s.apply_batch(&ops).unwrap();
        assert_eq!(out[2].value().map(|v| v.as_ref()), Some(&b"abcd"[..]));
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("put_calls"), Some(1));
        assert_eq!(snap.counter("merge_calls"), Some(1));
        assert_eq!(snap.counter("get_calls"), Some(1));
        assert_eq!(snap.counter("delete_calls"), Some(1));
        // Batched latencies are recorded unsampled (amortized per op).
        assert_eq!(snap.histogram("put_ns").unwrap().count(), 1);
    }

    #[test]
    fn semantics_pass_through() {
        let s = ObservedStore::new(MemStore::new());
        s.merge(b"k", b"ab").unwrap();
        s.merge(b"k", b"cd").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"abcd"[..]));
        assert!(s.supports_merge());
        assert!(s.supports_scan());
        assert_eq!(s.name(), "mem");
    }
}
