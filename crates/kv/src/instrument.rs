//! Access-trace instrumentation.

use std::time::Instant;

use parking_lot::Mutex;

use bytes::Bytes;
use gadget_obs::{MetricsRegistry, MetricsSnapshot};
use gadget_types::{Op, OpType, StateAccess, StateKey, Timestamp, Trace};

use crate::error::StoreError;
use crate::observed::OpTimers;
use crate::store::{apply_ops_serially, BatchResult, StateStore};

/// A store wrapper that records every access into a [`Trace`].
///
/// This is the Rust analogue of the paper's instrumented Flink state
/// management layer (§3.1): the reference stream processor runs its
/// operators against an `InstrumentedStore`, and the recorded trace plays
/// the role of the "real" state-access trace that Gadget's simulated traces
/// are validated against (§6.1).
///
/// Keys that decode as 16-byte [`StateKey`] encodings are recorded
/// structurally; other keys are recorded under a hash so that locality
/// metrics still work.
pub struct InstrumentedStore<S> {
    inner: S,
    trace: Mutex<Trace>,
    clock: Mutex<Timestamp>,
    metrics: MetricsRegistry,
    timers: OpTimers,
}

impl<S: StateStore> InstrumentedStore<S> {
    /// Wraps `inner`, starting with an empty trace.
    pub fn new(inner: S) -> Self {
        let metrics = MetricsRegistry::new();
        // Trace recording dwarfs a clock read, so time every call.
        let timers = OpTimers::registered(&metrics, 0);
        InstrumentedStore {
            inner,
            trace: Mutex::new(Trace::new()),
            clock: Mutex::new(0),
            metrics,
            timers,
        }
    }

    /// Sets the event-time timestamp that subsequent accesses are recorded
    /// with. The reference processor calls this as it processes each event.
    pub fn set_time(&self, ts: Timestamp) {
        *self.clock.lock() = ts;
    }

    /// Takes the recorded trace, leaving an empty one behind.
    pub fn take_trace(&self) -> Trace {
        std::mem::take(&mut *self.trace.lock())
    }

    /// Returns a reference to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn record(&self, op: OpType, key: &[u8], value_size: u32) {
        let state_key = match StateKey::decode(key) {
            Some(k) => k,
            None => StateKey::plain(crate::hash::fnv1a(key)),
        };
        let ts = *self.clock.lock();
        self.trace.lock().push(StateAccess {
            op,
            key: state_key,
            value_size,
            ts,
        });
    }
}

impl<S: StateStore> StateStore for InstrumentedStore<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.record(OpType::Get, key, 0);
        self.timers.get.time(|| self.inner.get(key))
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.record(OpType::Put, key, value.len() as u32);
        self.timers.put.time(|| self.inner.put(key, value))
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.record(OpType::Merge, key, operand.len() as u32);
        self.timers.merge.time(|| self.inner.merge(key, operand))
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.record(OpType::Delete, key, 0);
        self.timers.delete.time(|| self.inner.delete(key))
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        // Range reads surface as one recorded get per returned key, which
        // is how a scan appears in the state-access vocabulary.
        let result = self.inner.scan(lo, hi)?;
        for (k, _) in &result {
            self.record(OpType::Get, k, 0);
        }
        Ok(result)
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.inner.supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    fn durability(&self) -> crate::durability::Durability {
        self.inner.durability()
    }

    // Lifecycle calls pass through unrecorded: they are not state
    // accesses, so they must not appear in the trace.
    fn checkpoint(
        &self,
        dir: &std::path::Path,
    ) -> Result<crate::durability::CheckpointManifest, StoreError> {
        self.inner.checkpoint(dir)
    }

    fn restore(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.inner.restore(dir)
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.inner.internal_counters()
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        // Trace entries are recorded per op, in issue order, with the same
        // (op, key, size, ts) tuples the unbatched path produces — batching
        // must be invisible in the trace.
        for op in batch {
            self.record(op.op_type(), op.key(), op.payload().len() as u32);
        }
        let started = Instant::now();
        let out = self.inner.apply_batch(batch)?;
        self.timers
            .record_batch(batch, started.elapsed().as_nanos() as u64);
        Ok(out)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.inner.metrics().unwrap_or_default();
        snap.merge(&self.metrics.snapshot());
        snap.push_gauge("trace_len", self.trace.lock().len() as i64);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    #[test]
    fn records_all_operation_types() {
        let s = InstrumentedStore::new(MemStore::new());
        let k = StateKey::windowed(3, 5_000).encode();
        s.set_time(10);
        s.put(&k, b"hello").unwrap();
        s.set_time(20);
        s.get(&k).unwrap();
        s.merge(&k, b"!").unwrap();
        s.delete(&k).unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.accesses[0].op, OpType::Put);
        assert_eq!(trace.accesses[0].value_size, 5);
        assert_eq!(trace.accesses[0].ts, 10);
        assert_eq!(trace.accesses[1].ts, 20);
        assert_eq!(trace.accesses[0].key, StateKey::windowed(3, 5_000));
    }

    #[test]
    fn take_trace_resets() {
        let s = InstrumentedStore::new(MemStore::new());
        s.put(b"0123456789abcdef", b"v").unwrap();
        assert_eq!(s.take_trace().len(), 1);
        assert_eq!(s.take_trace().len(), 0);
    }

    #[test]
    fn non_statekey_keys_are_hashed_stably() {
        let s = InstrumentedStore::new(MemStore::new());
        s.put(b"odd-key", b"v").unwrap();
        s.get(b"odd-key").unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.accesses[0].key, trace.accesses[1].key);
    }

    #[test]
    fn scan_records_a_get_per_returned_key() {
        let s = InstrumentedStore::new(MemStore::new());
        s.put(&StateKey::plain(1).encode(), b"a").unwrap();
        s.put(&StateKey::plain(2).encode(), b"b").unwrap();
        s.take_trace();
        let hits = s
            .scan(&StateKey::plain(0).encode(), &StateKey::plain(9).encode())
            .unwrap();
        assert_eq!(hits.len(), 2);
        let trace = s.take_trace();
        assert_eq!(trace.len(), 2);
        assert!(trace.iter().all(|a| a.op == OpType::Get));
        assert!(s.supports_scan());
    }

    #[test]
    fn metrics_time_every_operation() {
        let s = InstrumentedStore::new(MemStore::new());
        s.put(b"k", b"v").unwrap();
        s.get(b"k").unwrap();
        s.get(b"k").unwrap();
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("get_calls"), Some(2));
        assert_eq!(snap.histogram("get_ns").unwrap().count(), 2);
        assert_eq!(snap.gauge("trace_len"), Some(3));
        // Inner MemStore metrics ride along.
        assert_eq!(snap.counter("puts"), Some(1));
    }

    #[test]
    fn batch_trace_is_identical_to_op_by_op() {
        let batched = InstrumentedStore::new(MemStore::new());
        let serial = InstrumentedStore::new(MemStore::new());
        batched.set_time(42);
        serial.set_time(42);
        let k = StateKey::windowed(3, 9).encode().to_vec();
        let ops = vec![
            Op::put(k.clone(), b"hello".to_vec()),
            Op::merge(k.clone(), b"!".to_vec()),
            Op::get(k.clone()),
            Op::delete(k),
        ];
        let out = batched.apply_batch(&ops).unwrap();
        let expect = crate::store::apply_ops_serially(&serial, &ops).unwrap();
        assert_eq!(out, expect);
        assert_eq!(batched.take_trace().accesses, serial.take_trace().accesses);
    }

    #[test]
    fn batch_keeps_per_op_call_counts() {
        let s = InstrumentedStore::new(MemStore::new());
        let ops = vec![
            Op::put(b"a".to_vec(), b"1".to_vec()),
            Op::put(b"b".to_vec(), b"2".to_vec()),
            Op::get(b"a".to_vec()),
        ];
        s.apply_batch(&ops).unwrap();
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("put_calls"), Some(2));
        assert_eq!(snap.counter("get_calls"), Some(1));
    }

    #[test]
    fn passthrough_preserves_semantics() {
        let s = InstrumentedStore::new(MemStore::new());
        s.merge(b"k", b"ab").unwrap();
        s.merge(b"k", b"cd").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"abcd"[..]));
        assert!(s.supports_merge());
    }
}
