//! A reference in-memory store.

use std::collections::HashMap;
use std::path::Path;

use bytes::Bytes;
use parking_lot::RwLock;

use gadget_obs::{MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

use crate::durability::{read_kv_records, write_snapshot_file, CheckpointManifest, Durability};
use crate::error::StoreError;
use crate::store::{apply_ops_serially, BatchResult, StateStore, StoreCounters};

/// File name of the MemStore snapshot inside a checkpoint directory.
const SNAPSHOT_NAME: &str = "mem.snap";

/// A trivial in-memory hash-map store.
///
/// `MemStore` exists as (i) the semantic reference implementation against
/// which the real substrates are differentially tested, and (ii) an
/// upper-bound "infinitely fast store" baseline in reports. It supports
/// native merges by direct concatenation.
#[derive(Debug)]
pub struct MemStore {
    map: RwLock<HashMap<Vec<u8>, Bytes>>,
    counters: StoreCounters,
    metrics: MetricsRegistry,
}

impl Default for MemStore {
    fn default() -> Self {
        let metrics = MetricsRegistry::new();
        MemStore {
            map: RwLock::default(),
            counters: StoreCounters::registered(&metrics),
            metrics,
        }
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Returns true if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl StateStore for MemStore {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.counters.record_get();
        Ok(self.map.read().get(key).cloned())
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.counters.record_put();
        self.map
            .write()
            .insert(key.to_vec(), Bytes::copy_from_slice(value));
        Ok(())
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.counters.record_merge();
        let mut map = self.map.write();
        match map.get_mut(key) {
            Some(existing) => {
                let mut v = Vec::with_capacity(existing.len() + operand.len());
                v.extend_from_slice(existing);
                v.extend_from_slice(operand);
                *existing = Bytes::from(v);
            }
            None => {
                map.insert(key.to_vec(), Bytes::copy_from_slice(operand));
            }
        }
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.counters.record_delete();
        self.map.write().remove(key);
        Ok(())
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        let map = self.map.read();
        let mut out: Vec<(Bytes, Bytes)> = map
            .iter()
            .filter(|(k, _)| k.as_slice() >= lo && k.as_slice() <= hi)
            .map(|(k, v)| (Bytes::copy_from_slice(k), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        Ok(out)
    }

    fn supports_scan(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        true
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.counters.snapshot()
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.metrics.snapshot();
        snap.push_gauge("live_keys", self.len() as i64);
        Some(snap)
    }

    fn durability(&self) -> Durability {
        // Process death loses everything; only explicit checkpoints survive.
        Durability::Ephemeral
    }

    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::path_io("open", dir, e))?;
        let map = self.map.read();
        let mut entries: Vec<(&Vec<u8>, &Bytes)> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let bytes = write_snapshot_file(
            &dir.join(SNAPSHOT_NAME),
            entries.iter().map(|(k, v)| (k.as_slice(), v.as_ref())),
        )?;
        drop(map);
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.push_file(SNAPSHOT_NAME, bytes);
        manifest.save(dir)?;
        Ok(manifest)
    }

    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        let manifest = CheckpointManifest::load(dir)?;
        if manifest.store != self.name() {
            return Err(StoreError::Corruption(format!(
                "checkpoint was taken by store {:?}, not {:?}",
                manifest.store,
                self.name()
            )));
        }
        let records = read_kv_records(&dir.join(SNAPSHOT_NAME))?;
        let mut map = self.map.write();
        map.clear();
        for (k, v) in records {
            map.insert(k, Bytes::from(v));
        }
        Ok(())
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        // Single-op batches take the per-op methods directly.
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        // One write-lock acquisition for the whole batch. Gets read through
        // the same exclusive guard, which keeps results identical to op-by-op
        // order without a lock-mode dance.
        let mut map = self.map.write();
        let mut out = Vec::with_capacity(batch.len());
        for op in batch {
            match op {
                Op::Get { key } => {
                    self.counters.record_get();
                    out.push(BatchResult::Value(map.get(key.as_ref()).cloned()));
                }
                Op::Put { key, value } => {
                    self.counters.record_put();
                    map.insert(key.to_vec(), value.clone());
                    out.push(BatchResult::Applied);
                }
                Op::Merge { key, operand } => {
                    self.counters.record_merge();
                    match map.get_mut(key.as_ref()) {
                        Some(existing) => {
                            let mut v = Vec::with_capacity(existing.len() + operand.len());
                            v.extend_from_slice(existing);
                            v.extend_from_slice(operand);
                            *existing = Bytes::from(v);
                        }
                        None => {
                            map.insert(key.to_vec(), operand.clone());
                        }
                    }
                    out.push(BatchResult::Applied);
                }
                Op::Delete { key } => {
                    self.counters.record_delete();
                    map.remove(key.as_ref());
                    out.push(BatchResult::Applied);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = MemStore::new();
        s.put(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(s.get(b"missing").unwrap(), None);
    }

    #[test]
    fn merge_appends() {
        let s = MemStore::new();
        s.merge(b"k", b"ab").unwrap();
        s.merge(b"k", b"cd").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"abcd"[..]));
    }

    #[test]
    fn delete_removes_and_is_idempotent() {
        let s = MemStore::new();
        s.put(b"k", b"v").unwrap();
        s.delete(b"k").unwrap();
        s.delete(b"k").unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn put_overwrites_merge_history() {
        let s = MemStore::new();
        s.merge(b"k", b"xx").unwrap();
        s.put(b"k", b"y").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"y"[..]));
    }

    #[test]
    fn scan_returns_sorted_range() {
        let s = MemStore::new();
        for k in [5u8, 1, 9, 3, 7] {
            s.put(&[k], &[k + 100]).unwrap();
        }
        let hits = s.scan(&[3], &[7]).unwrap();
        let keys: Vec<u8> = hits.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 5, 7]);
        assert!(s.supports_scan());
    }

    #[test]
    fn metrics_snapshot_tracks_ops_and_live_keys() {
        let s = MemStore::new();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        s.get(b"a").unwrap();
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("puts"), Some(2));
        assert_eq!(snap.counter("gets"), Some(1));
        assert_eq!(snap.gauge("live_keys"), Some(2));
    }

    #[test]
    fn apply_batch_matches_op_by_op() {
        let batched = MemStore::new();
        let serial = MemStore::new();
        let ops = vec![
            Op::put(&b"a"[..], &b"1"[..]),
            Op::merge(&b"a"[..], &b"2"[..]),
            Op::get(&b"a"[..]),
            Op::delete(&b"a"[..]),
            Op::get(&b"a"[..]),
        ];
        let out = batched.apply_batch(&ops).unwrap();
        let expect = crate::store::apply_ops_serially(&serial, &ops).unwrap();
        assert_eq!(out, expect);
        assert_eq!(out[2].value().map(|v| v.as_ref()), Some(&b"12"[..]));
        assert!(!out[4].found());
        assert_eq!(batched.internal_counters(), serial.internal_counters());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gadget-mem-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = MemStore::new();
        s.put(b"a", b"1").unwrap();
        s.merge(b"b", b"22").unwrap();
        s.delete(b"gone").unwrap();
        assert_eq!(s.durability(), Durability::Ephemeral);
        let manifest = s.checkpoint(&dir).unwrap();
        assert_eq!(manifest.store, "mem");
        assert_eq!(manifest.files.len(), 1);

        // Mutate past the checkpoint, then restore: state rolls back.
        s.put(b"a", b"overwritten").unwrap();
        s.put(b"c", b"3").unwrap();
        s.restore(&dir).unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(s.get(b"b").unwrap().as_deref(), Some(&b"22"[..]));
        assert_eq!(s.get(b"c").unwrap(), None);

        // A different store's checkpoint is refused.
        let other = MemStore::new();
        other.put(b"x", b"y").unwrap();
        let manifest = CheckpointManifest::load(&dir).unwrap();
        let mut wrong = manifest.clone();
        wrong.store = "lsm".to_string();
        wrong.save(&dir).unwrap();
        assert!(matches!(
            other.restore(&dir),
            Err(StoreError::Corruption(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_reflect_usage() {
        let s = MemStore::new();
        s.put(b"a", b"1").unwrap();
        s.get(b"a").unwrap();
        s.merge(b"a", b"2").unwrap();
        s.delete(b"a").unwrap();
        let counters = s.internal_counters();
        assert!(counters.contains(&("gets".to_string(), 1)));
        assert!(counters.contains(&("puts".to_string(), 1)));
        assert!(counters.contains(&("merges".to_string(), 1)));
        assert!(counters.contains(&("deletes".to_string(), 1)));
    }
}
