//! Hash-sharded store composition.
//!
//! [`ShardedStore`] partitions the keyspace across N inner
//! [`StateStore`] instances by key hash. Every store in the workspace
//! funnels writes through one coarse lock (the LSM's `WriteState`
//! mutex, the B+Tree's tree mutex), so a single instance cannot use
//! more than ~1 core of write bandwidth no matter how many client
//! threads it has. Sharding multiplies the whole stack: N independent
//! locks, N WALs fsyncing in parallel, N background flush/compaction
//! workers — while the routing invariant (one shard owns a key forever)
//! preserves per-key operation order, which is all the dataflow model
//! requires.
//!
//! The router is FNV-1a over the key bytes modulo the shard count, the
//! same hash family the hash-log store and the trace instrumentation
//! use. Routing is deterministic across runs, so a sharded store's
//! on-disk layout (`shard-0/`, `shard-1/`, …) recovers shard-by-shard:
//! each inner store replays its own WAL with no cross-shard
//! coordination.
//!
//! Every routed call runs inside a [`trace::shard_scope`], so sampled
//! op spans (and WAL fsyncs performed on the calling thread) carry the
//! shard id and tail-latency attribution can blame a hot shard.

use std::sync::Arc;

use bytes::Bytes;
use gadget_obs::trace;
use gadget_obs::MetricsSnapshot;
use gadget_types::Op;

use crate::error::StoreError;
use crate::store::{BatchResult, StateStore};

/// FNV-1a shard router: which of `shards` owns `key`.
///
/// Deterministic and stable across processes; used by the store itself
/// and by shard-affine replay threads, which must agree on ownership.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Below this batch size, splitting across worker threads costs more
/// than it saves; sub-batches are applied sequentially instead (still
/// one group-commit per shard).
const PARALLEL_BATCH_MIN: usize = 8;

/// A store that hash-partitions the keyspace over N inner stores.
pub struct ShardedStore {
    shards: Vec<Arc<dyn StateStore>>,
    name: &'static str,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedStore {
    /// Builds a sharded store from `shards` instances produced by
    /// `factory` (called with the shard index, so disk-backed stores
    /// can give each shard its own directory).
    ///
    /// Fails with [`StoreError::InvalidArgument`] when `shards == 0`,
    /// or with the first factory error.
    pub fn from_factory<F>(shards: usize, mut factory: F) -> Result<ShardedStore, StoreError>
    where
        F: FnMut(usize) -> Result<Arc<dyn StateStore>, StoreError>,
    {
        if shards == 0 {
            return Err(StoreError::InvalidArgument(
                "shard count must be at least 1".to_string(),
            ));
        }
        let stores = (0..shards).map(&mut factory).collect::<Result<_, _>>()?;
        ShardedStore::from_stores(stores)
    }

    /// Builds a sharded store over pre-built instances.
    pub fn from_stores(stores: Vec<Arc<dyn StateStore>>) -> Result<ShardedStore, StoreError> {
        if stores.is_empty() {
            return Err(StoreError::InvalidArgument(
                "shard count must be at least 1".to_string(),
            ));
        }
        let name = stores[0].name();
        Ok(ShardedStore {
            shards: stores,
            name,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key`.
    pub fn shard_for_key(&self, key: &[u8]) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Direct access to one shard (tests and diagnostics).
    pub fn shard(&self, index: usize) -> &Arc<dyn StateStore> {
        &self.shards[index]
    }

    /// Splits `batch` into per-shard sub-batches, preserving both the
    /// relative op order within each shard and the original positions
    /// for result re-stitching.
    fn partition(&self, batch: &[Op]) -> Vec<(usize, Vec<usize>, Vec<Op>)> {
        let n = self.shards.len();
        let mut parts: Vec<(Vec<usize>, Vec<Op>)> = vec![(Vec::new(), Vec::new()); n];
        for (i, op) in batch.iter().enumerate() {
            let s = shard_of(op.key(), n);
            parts[s].0.push(i);
            parts[s].1.push(op.clone());
        }
        parts
            .into_iter()
            .enumerate()
            .filter(|(_, (idx, _))| !idx.is_empty())
            .map(|(s, (idx, ops))| (s, idx, ops))
            .collect()
    }

    /// Re-stitches per-shard results into positional order.
    fn stitch(
        batch_len: usize,
        parts: Vec<(usize, Vec<usize>, Vec<BatchResult>)>,
    ) -> Vec<BatchResult> {
        let mut out: Vec<Option<BatchResult>> = vec![None; batch_len];
        for (_, indices, results) in parts {
            for (i, r) in indices.into_iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every op belongs to exactly one shard"))
            .collect()
    }
}

impl StateStore for ShardedStore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        let s = self.shard_for_key(key);
        let _scope = trace::shard_scope(s as u64);
        self.shards[s].get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let s = self.shard_for_key(key);
        let _scope = trace::shard_scope(s as u64);
        self.shards[s].put(key, value)
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        let s = self.shard_for_key(key);
        let _scope = trace::shard_scope(s as u64);
        self.shards[s].merge(key, operand)
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        let s = self.shard_for_key(key);
        let _scope = trace::shard_scope(s as u64);
        self.shards[s].delete(key)
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        // Hash routing scatters a key range over every shard: scan them
        // all and merge. Each shard returns sorted output, so a global
        // sort of the concatenation restores ascending key order.
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let _scope = trace::shard_scope(s as u64);
            out.extend(shard.scan(lo, hi)?);
        }
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        Ok(out)
    }

    fn supports_scan(&self) -> bool {
        self.shards[0].supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.shards[0].supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        for (s, shard) in self.shards.iter().enumerate() {
            let _scope = trace::shard_scope(s as u64);
            shard.flush()?;
        }
        Ok(())
    }

    /// Counters summed by name across shards.
    fn internal_counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            for (name, value) in shard.internal_counters() {
                match out.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, v)) => *v += value,
                    None => out.push((name, value)),
                }
            }
        }
        out
    }

    /// Per-shard snapshots aggregated into one: counters add,
    /// histograms merge, and gauges *sum* (shard gauges are sizes and
    /// occupancies, where the whole-store reading is the total — unlike
    /// `MetricsSnapshot::merge`, which treats `other` as a newer
    /// reading of the same component). A `shards` gauge records the
    /// shard count.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut agg = MetricsSnapshot::new();
        let mut any = false;
        for shard in &self.shards {
            let Some(snap) = shard.metrics() else {
                continue;
            };
            any = true;
            for (name, value) in &snap.counters {
                agg.push_counter(name, *value);
            }
            for (name, value) in &snap.gauges {
                match agg.gauges.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => *v += *value,
                    None => agg.gauges.push((name.clone(), *value)),
                }
            }
            for (name, hist) in &snap.histograms {
                match agg.histograms.iter_mut().find(|(n, _)| n == name) {
                    Some((_, h)) => h.merge(hist),
                    None => agg.histograms.push((name.clone(), hist.clone())),
                }
            }
        }
        if !any {
            return None;
        }
        agg.push_gauge("shards", self.shards.len() as i64);
        agg.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        agg.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Some(agg)
    }

    /// Splits the batch by shard, applies sub-batches in parallel, and
    /// re-stitches positional results.
    ///
    /// Each shard receives its ops in original relative order, so
    /// per-key semantics match the unsharded store exactly (a key never
    /// crosses shards). Group-commit savings multiply: N shards fsync
    /// their WALs concurrently instead of serializing on one.
    ///
    /// On error the first failing shard's error is returned; sub-batches
    /// already applied on other shards remain applied, matching the
    /// trait's partial-application contract.
    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let mut parts = self.partition(batch);
        if parts.len() == 1 {
            let (s, indices, ops) = parts.pop().expect("one part");
            let _scope = trace::shard_scope(s as u64);
            let results = self.shards[s].apply_batch(&ops)?;
            return Ok(Self::stitch(batch.len(), vec![(s, indices, results)]));
        }
        if batch.len() < PARALLEL_BATCH_MIN {
            // Tiny batch over several shards: thread spawns would cost
            // more than the work. Apply sequentially, still batched per
            // shard.
            let mut done = Vec::with_capacity(parts.len());
            for (s, indices, ops) in parts {
                let _scope = trace::shard_scope(s as u64);
                let results = self.shards[s].apply_batch(&ops)?;
                done.push((s, indices, results));
            }
            return Ok(Self::stitch(batch.len(), done));
        }
        let applied = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|(s, _, ops)| {
                    let shard = &self.shards[*s];
                    let s = *s;
                    scope.spawn(move || {
                        let _scope = trace::shard_scope(s as u64);
                        shard.apply_batch(ops)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard apply thread panicked"))
                .collect::<Vec<_>>()
        });
        let mut done = Vec::with_capacity(parts.len());
        let mut first_err = None;
        for ((s, indices, _), result) in parts.into_iter().zip(applied) {
            match result {
                Ok(results) => done.push((s, indices, results)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(Self::stitch(batch.len(), done)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    fn sharded_mem(n: usize) -> ShardedStore {
        ShardedStore::from_factory(n, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
            .unwrap()
    }

    #[test]
    fn zero_shards_is_rejected() {
        let err =
            ShardedStore::from_factory(0, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
                .unwrap_err();
        assert!(matches!(err, StoreError::InvalidArgument(_)));
        assert!(ShardedStore::from_stores(Vec::new()).is_err());
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let s = sharded_mem(4);
        for i in 0..200u64 {
            let key = i.to_be_bytes();
            let owner = s.shard_for_key(&key);
            assert!(owner < 4);
            assert_eq!(owner, s.shard_for_key(&key), "stable routing");
            assert_eq!(owner, shard_of(&key, 4));
        }
        // Every shard owns some keys (FNV spreads 200 keys well).
        let owned: std::collections::HashSet<usize> = (0..200u64)
            .map(|i| s.shard_for_key(&i.to_be_bytes()))
            .collect();
        assert_eq!(owned.len(), 4);
    }

    #[test]
    fn point_ops_round_trip_through_shards() {
        let s = sharded_mem(4);
        for i in 0..100u64 {
            s.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..])
            );
        }
        s.merge(b"m", b"ab").unwrap();
        s.merge(b"m", b"cd").unwrap();
        assert_eq!(s.get(b"m").unwrap().as_deref(), Some(&b"abcd"[..]));
        s.delete(b"m").unwrap();
        assert_eq!(s.get(b"m").unwrap(), None);
        // Keys land on the shard the router says they do.
        let key = 42u64.to_be_bytes();
        let owner = s.shard_for_key(&key);
        assert!(s.shard(owner).get(&key).unwrap().is_some());
        for other in (0..4).filter(|o| *o != owner) {
            assert!(s.shard(other).get(&key).unwrap().is_none());
        }
    }

    #[test]
    fn scan_merges_all_shards_in_key_order() {
        let s = sharded_mem(4);
        for i in 0..50u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        let hits = s.scan(&10u64.to_be_bytes(), &19u64.to_be_bytes()).unwrap();
        let keys: Vec<u64> = hits
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, (10..=19).collect::<Vec<u64>>());
    }

    #[test]
    fn apply_batch_stitches_positional_results() {
        for shards in [1usize, 2, 3, 7] {
            let s = sharded_mem(shards);
            let mut ops = Vec::new();
            for i in 0..64u64 {
                ops.push(Op::put(i.to_be_bytes().to_vec(), vec![i as u8]));
            }
            for i in 0..64u64 {
                ops.push(Op::get(i.to_be_bytes().to_vec()));
            }
            let out = s.apply_batch(&ops).unwrap();
            assert_eq!(out.len(), 128);
            for i in 0..64usize {
                assert_eq!(out[i], BatchResult::Applied, "shards={shards} op {i}");
                assert_eq!(
                    out[64 + i].value().map(|v| v.as_ref()),
                    Some(&[i as u8][..]),
                    "shards={shards} get {i}"
                );
            }
        }
    }

    #[test]
    fn small_batches_avoid_thread_fanout_but_stay_correct() {
        let s = sharded_mem(8);
        let ops = vec![
            Op::put(b"a".to_vec(), b"1".to_vec()),
            Op::put(b"b".to_vec(), b"2".to_vec()),
            Op::get(b"a".to_vec()),
        ];
        let out = s.apply_batch(&ops).unwrap();
        assert_eq!(out[2].value().map(|v| v.as_ref()), Some(&b"1"[..]));
        assert!(s.apply_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn counters_and_metrics_aggregate_across_shards() {
        let s = sharded_mem(4);
        for i in 0..40u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in 0..10u64 {
            s.get(&i.to_be_bytes()).unwrap();
        }
        let counters = s.internal_counters();
        assert!(counters.contains(&("puts".to_string(), 40)));
        assert!(counters.contains(&("gets".to_string(), 10)));
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("puts"), Some(40));
        // Gauges sum across shards: 40 distinct keys in total.
        assert_eq!(snap.gauge("live_keys"), Some(40));
        assert_eq!(snap.gauge("shards"), Some(4));
    }

    #[test]
    fn single_shard_behaves_like_inner_store() {
        let s = sharded_mem(1);
        s.put(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(s.name(), "mem");
        assert!(s.supports_merge());
        assert!(s.supports_scan());
        assert_eq!(s.shard_for_key(b"anything"), 0);
    }

    /// A store that records which shard context each call ran under.
    struct ShardProbe {
        seen: parking_lot::Mutex<Vec<u64>>,
    }

    impl StateStore for ShardProbe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn get(&self, _key: &[u8]) -> Result<Option<Bytes>, StoreError> {
            self.seen.lock().push(trace::current_shard());
            Ok(None)
        }
        fn put(&self, _key: &[u8], _value: &[u8]) -> Result<(), StoreError> {
            self.seen.lock().push(trace::current_shard());
            Ok(())
        }
        fn merge(&self, _key: &[u8], _operand: &[u8]) -> Result<(), StoreError> {
            Ok(())
        }
        fn delete(&self, _key: &[u8]) -> Result<(), StoreError> {
            Ok(())
        }
    }

    #[test]
    fn routed_calls_run_inside_the_shard_scope() {
        let probes: Vec<Arc<ShardProbe>> = (0..4)
            .map(|_| {
                Arc::new(ShardProbe {
                    seen: parking_lot::Mutex::new(Vec::new()),
                })
            })
            .collect();
        let s = ShardedStore::from_stores(
            probes
                .iter()
                .map(|p| p.clone() as Arc<dyn StateStore>)
                .collect(),
        )
        .unwrap();
        for i in 0..32u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
            s.get(&i.to_be_bytes()).unwrap();
        }
        for (idx, probe) in probes.iter().enumerate() {
            let seen = probe.seen.lock().clone();
            assert!(
                seen.iter().all(|&tag| tag == idx as u64),
                "shard {idx} saw contexts {seen:?}"
            );
        }
        // The caller's thread is untagged once the calls return.
        assert_eq!(trace::current_shard(), trace::NO_SHARD);
    }

    #[test]
    fn batch_workers_run_inside_the_shard_scope() {
        let probes: Vec<Arc<ShardProbe>> = (0..4)
            .map(|_| {
                Arc::new(ShardProbe {
                    seen: parking_lot::Mutex::new(Vec::new()),
                })
            })
            .collect();
        let s = ShardedStore::from_stores(
            probes
                .iter()
                .map(|p| p.clone() as Arc<dyn StateStore>)
                .collect(),
        )
        .unwrap();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::put(i.to_be_bytes().to_vec(), b"v".to_vec()))
            .collect();
        s.apply_batch(&ops).unwrap();
        for (idx, probe) in probes.iter().enumerate() {
            let seen = probe.seen.lock().clone();
            assert!(!seen.is_empty(), "shard {idx} got no ops");
            assert!(
                seen.iter().all(|&tag| tag == idx as u64),
                "shard {idx} saw contexts {seen:?}"
            );
        }
    }
}
