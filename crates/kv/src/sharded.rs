//! Hash-sharded store composition with a live-reshardable topology.
//!
//! [`ShardedStore`] partitions the keyspace across N inner
//! [`StateStore`] instances. Every store in the workspace funnels
//! writes through one coarse lock (the LSM's `WriteState` mutex, the
//! B+Tree's tree mutex), so a single instance cannot use more than ~1
//! core of write bandwidth no matter how many client threads it has.
//! Sharding multiplies the whole stack: N independent locks, N WALs
//! fsyncing in parallel, N background flush/compaction workers — while
//! the routing invariant (one shard owns a key at any instant, and
//! ownership only changes at an atomic map flip) preserves per-key
//! operation order, which is all the dataflow model requires.
//!
//! Routing goes through a pluggable [`Router`] — by default the
//! versioned [`SlotTable`] with the identity assignment, which for any
//! shard count dividing [`SLOTS`] routes bit-for-bit like the legacy
//! `fnv1a(key) % N` modulo (so existing on-disk layouts recover
//! unchanged). The router lives behind an epoch pointer
//! (`RwLock<Arc<dyn Router>>`): every operation pins one coherent
//! epoch for its duration, and a topology change installs a whole new
//! map in one pointer swap.
//!
//! # Live migration
//!
//! [`ShardedStore::migrate_slots`] moves a set of slots to another
//! shard while traffic keeps flowing:
//!
//! 1. **Open the transfer window.** A migration record (slot set +
//!    target) is installed under the `migration` write lock, which
//!    waits for in-flight operations — so every write issued before
//!    the window opened is visible to the copier.
//! 2. **Double-apply.** While the window is open, writes to migrating
//!    slots apply to *both* the current owner and the target, under
//!    the migration serial lock. Reads keep going to the current owner
//!    alone: it stays authoritative until the flip.
//! 3. **Copy.** The copier snapshots the source's key list, then
//!    copies values in small chunks, re-reading each key under the
//!    same serial lock. Serializing the copier chunks and the
//!    double-applied writes makes the transfer linearizable: whichever
//!    order a copy and a concurrent write land in, the target ends up
//!    with the source's latest value. Each chunk is a
//!    `SlotMigration` trace span — the contention the window inflicts
//!    on foreground writes shows up in >p99 attribution.
//! 4. **Flip.** Under the serial lock, a successor [`SlotTable`] with
//!    the slots reassigned is swapped in and the window is closed. The
//!    flip duration is recorded as the migration's pause time.
//! 5. **Cleanup.** The moved keys are deleted from the old owner
//!    (nothing routes there anymore).
//!
//! Scans always filter each shard's results through the current map
//! (`route(key) == shard`), so in-window duplicates on the target and
//! not-yet-cleaned leftovers on the source are invisible.
//!
//! Every routed call runs inside a [`trace::shard_scope`], so sampled
//! op spans (and WAL fsyncs performed on the calling thread) carry the
//! shard id and tail-latency attribution can blame a hot shard.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use gadget_obs::trace;
use gadget_obs::MetricsSnapshot;
use gadget_types::Op;
use parking_lot::{Mutex, RwLock};

use crate::durability::{shard_checkpoint_dir, CheckpointManifest, Durability};
use crate::error::StoreError;
use crate::hash::fnv1a;
use crate::router::{slot_of_key, ReshardEvent, Router, SlotTable, SLOTS};
use crate::store::{BatchResult, StateStore};

/// FNV-1a modulo router: which of `shards` owns `key`.
///
/// Deterministic and stable across processes. This remains the
/// canonical *static* partitioner — shard-affine replay threads and
/// the server driver's connection fan-out use it directly — and the
/// identity [`SlotTable`] reproduces it exactly for shard counts that
/// divide [`SLOTS`].
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    if shards <= 1 {
        return 0;
    }
    (fnv1a(key) % shards as u64) as usize
}

/// Below this batch size, splitting across worker threads costs more
/// than it saves; sub-batches are applied sequentially instead (still
/// one group-commit per shard).
const PARALLEL_BATCH_MIN: usize = 8;

/// Keys copied per serialized migration chunk. Small enough that
/// foreground writes blocked on the serial lock wait one chunk at
/// most, large enough to amortize the lock handoff.
const COPY_CHUNK: usize = 128;

/// Inclusive upper bound handed to inner-store scans when the copier
/// and cleanup passes enumerate a shard. Covers every key the harness
/// produces (16-byte `StateKey` encodings, short test keys); keys
/// longer than 64 bytes of `0xff` would escape migration.
const SCAN_HI: [u8; 64] = [0xff; 64];

/// Builds shard `index` on demand, so a split can add a shard (with
/// its own directory, for disk-backed stores) mid-run.
type ShardFactory = Box<dyn Fn(usize) -> Result<Arc<dyn StateStore>, StoreError> + Send + Sync>;

/// An open transfer window: writes to these slots double-apply to
/// `to` until the map flip closes the window.
struct MigrationState {
    /// `migrating[slot]` — is this slot inside the window?
    migrating: Vec<bool>,
    /// Target shard receiving the slots.
    to: usize,
}

/// A store that hash-partitions the keyspace over N inner stores and
/// can rebalance that partition while serving traffic.
pub struct ShardedStore {
    /// Inner shards. Grows (never shrinks) under the write lock when a
    /// split adds a shard; operations hold the read lock.
    shards: RwLock<Vec<Arc<dyn StateStore>>>,
    /// The epoch pointer: the current partition map. Swapped whole on
    /// a topology change; operations clone the `Arc` and route against
    /// one coherent epoch.
    router: RwLock<Arc<dyn Router>>,
    /// The open transfer window, if a migration is in flight. Ops hold
    /// the read lock for their duration, so installing (or clearing)
    /// the window is a barrier against in-flight operations.
    migration: RwLock<Option<MigrationState>>,
    /// Serializes double-applied writes, copier chunks, and the map
    /// flip. Lock order: `serial` before `migration` before `router`
    /// before `shards`; never acquire leftward while holding
    /// rightward.
    serial: Mutex<()>,
    /// Completed migrations, oldest first.
    events: Mutex<Vec<ReshardEvent>>,
    /// Builds new shards for splits; absent when constructed from
    /// pre-built stores.
    factory: Option<ShardFactory>,
    name: &'static str,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("name", &self.name)
            .field("shards", &self.shards.read().len())
            .field("map_version", &self.router.read().version())
            .finish()
    }
}

impl ShardedStore {
    /// Builds a sharded store from `shards` instances produced by
    /// `factory` (called with the shard index, so disk-backed stores
    /// can give each shard its own directory). The factory is retained:
    /// [`ShardedStore::split_shard`] calls it with the next index to
    /// grow the topology mid-run.
    ///
    /// # Invariant
    /// A sharded store routes over at least one shard — `shards == 0`
    /// is a construction error ([`StoreError::Config`]), as is a shard
    /// count that cannot be addressed by the slot table (`> 65536`).
    /// The first factory error is propagated as-is.
    pub fn from_factory<F>(shards: usize, factory: F) -> Result<ShardedStore, StoreError>
    where
        F: Fn(usize) -> Result<Arc<dyn StateStore>, StoreError> + Send + Sync + 'static,
    {
        Self::check_shard_count(shards)?;
        let stores = (0..shards).map(&factory).collect::<Result<_, _>>()?;
        let mut store = ShardedStore::from_stores(stores)?;
        store.factory = Some(Box::new(factory));
        Ok(store)
    }

    /// Builds a sharded store over pre-built instances with the
    /// identity slot table. Without a factory, splits are unavailable
    /// (migrations between the existing shards still work).
    ///
    /// # Invariant
    /// At least one store is required; an empty vector is a
    /// construction error ([`StoreError::Config`]).
    pub fn from_stores(stores: Vec<Arc<dyn StateStore>>) -> Result<ShardedStore, StoreError> {
        Self::check_shard_count(stores.len())?;
        let router: Arc<dyn Router> = Arc::new(SlotTable::identity(stores.len()));
        Self::from_stores_with_router(stores, router)
    }

    /// Builds a sharded store over pre-built instances routed by a
    /// caller-supplied partition map — the pluggability seam.
    ///
    /// # Invariant
    /// `router.shards()` must equal `stores.len()`; a mismatched map
    /// is a construction error ([`StoreError::Config`]).
    pub fn from_stores_with_router(
        stores: Vec<Arc<dyn StateStore>>,
        router: Arc<dyn Router>,
    ) -> Result<ShardedStore, StoreError> {
        Self::check_shard_count(stores.len())?;
        if router.shards() != stores.len() {
            return Err(StoreError::Config(format!(
                "partition map routes over {} shards but {} stores were supplied",
                router.shards(),
                stores.len()
            )));
        }
        let name = stores[0].name();
        Ok(ShardedStore {
            shards: RwLock::new(stores),
            router: RwLock::new(router),
            migration: RwLock::new(None),
            serial: Mutex::new(()),
            events: Mutex::new(Vec::new()),
            factory: None,
            name,
        })
    }

    fn check_shard_count(shards: usize) -> Result<(), StoreError> {
        if shards == 0 {
            return Err(StoreError::Config(
                "shard count must be at least 1".to_string(),
            ));
        }
        if shards > u16::MAX as usize + 1 {
            return Err(StoreError::Config(format!(
                "shard count {shards} exceeds the slot table's addressable maximum (65536)"
            )));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// The current partition map epoch.
    pub fn router(&self) -> Arc<dyn Router> {
        self.router.read().clone()
    }

    /// Hex digest of the current partition map (see
    /// [`Router::digest`]); what reports record as topology
    /// provenance.
    pub fn partition_digest(&self) -> String {
        crate::router::digest_hex(self.router().as_ref())
    }

    /// Completed migrations, oldest first.
    pub fn reshard_events(&self) -> Vec<ReshardEvent> {
        self.events.lock().clone()
    }

    /// The shard that owns `key` under the current map.
    pub fn shard_for_key(&self, key: &[u8]) -> usize {
        self.router.read().route(key)
    }

    /// Direct access to one shard (tests and diagnostics).
    pub fn shard(&self, index: usize) -> Arc<dyn StateStore> {
        self.shards.read()[index].clone()
    }

    // -----------------------------------------------------------------
    // Live resharding
    // -----------------------------------------------------------------

    /// Splits `from`: builds a brand-new shard with the retained
    /// factory (index = current count, so an LSM gets a fresh
    /// `shard-<n>/` directory) and live-migrates every second slot
    /// `from` owns onto it. Requires construction via
    /// [`ShardedStore::from_factory`].
    pub fn split_shard(&self, from: usize, at_op: u64) -> Result<ReshardEvent, StoreError> {
        let factory = self.factory.as_ref().ok_or_else(|| {
            StoreError::Config(
                "split_shard needs a shard factory; build with from_factory".to_string(),
            )
        })?;
        let new_index = {
            let mut shards = self.shards.write();
            Self::check_shard_count(shards.len() + 1)?;
            let store = factory(shards.len())?;
            shards.push(store);
            shards.len() - 1
        };
        // The new shard owns no slots until the flip; if the migration
        // fails it stays as an idle (harmless) spare.
        self.migrate_half(from, new_index, at_op)
    }

    /// Reshards `from` toward `to`: with `to == shard_count()` this is
    /// a [`split`](ShardedStore::split_shard); with `to` an existing
    /// shard it live-migrates half of `from`'s slots there.
    pub fn reshard(&self, from: usize, to: usize, at_op: u64) -> Result<ReshardEvent, StoreError> {
        let count = self.shard_count();
        if from >= count {
            return Err(StoreError::InvalidArgument(format!(
                "source shard {from} out of range (have {count})"
            )));
        }
        if to == count {
            self.split_shard(from, at_op)
        } else if to < count {
            if from == to {
                return Err(StoreError::InvalidArgument(
                    "reshard source and target are the same shard".to_string(),
                ));
            }
            self.migrate_half(from, to, at_op)
        } else {
            Err(StoreError::InvalidArgument(format!(
                "target shard {to} out of range (have {count}; use {count} to split)"
            )))
        }
    }

    /// Migrates every second slot `from` owns to `to`.
    fn migrate_half(&self, from: usize, to: usize, at_op: u64) -> Result<ReshardEvent, StoreError> {
        let table = SlotTable::from_router(self.router.read().as_ref());
        let owned = table.slots_of(from);
        if owned.len() < 2 {
            return Err(StoreError::InvalidArgument(format!(
                "shard {from} owns {} slot(s); too few to split",
                owned.len()
            )));
        }
        let moved: Vec<usize> = owned.into_iter().skip(1).step_by(2).collect();
        self.migrate_slots(&moved, to, at_op)
    }

    /// Live-migrates `slots` to shard `to` while traffic flows: opens
    /// the double-apply window, copies the slots' keys in serialized
    /// chunks, atomically flips the partition map, and cleans the old
    /// owner. See the module docs for the full protocol.
    ///
    /// One migration runs at a time; a second concurrent call fails
    /// with [`StoreError::InvalidArgument`]. Source shards must
    /// support scans (the copier enumerates them); FASTER-class
    /// hash-indexed shards cannot be migration *sources*.
    pub fn migrate_slots(
        &self,
        slots: &[usize],
        to: usize,
        at_op: u64,
    ) -> Result<ReshardEvent, StoreError> {
        let started = Instant::now();
        // Validate with short-lived guards (nothing held across the
        // window install, per the lock order).
        {
            let shards = self.shards.read();
            if to >= shards.len() {
                return Err(StoreError::InvalidArgument(format!(
                    "target shard {to} out of range (have {})",
                    shards.len()
                )));
            }
        }
        let mut migrating = vec![false; SLOTS];
        for &slot in slots {
            if slot >= SLOTS {
                return Err(StoreError::InvalidArgument(format!(
                    "slot {slot} out of range (have {SLOTS})"
                )));
            }
            migrating[slot] = true;
        }
        // Open the window. Acquiring the write lock waits out every
        // in-flight op, so writes issued before the window opened are
        // visible to the copier's snapshot.
        {
            let mut window = self.migration.write();
            if window.is_some() {
                return Err(StoreError::InvalidArgument(
                    "a slot migration is already in progress".to_string(),
                ));
            }
            *window = Some(MigrationState { migrating, to });
        }
        // From here on every error path must close the window.
        let result = self.run_migration(slots, to, at_op, started);
        if result.is_err() {
            *self.migration.write() = None;
        }
        result
    }

    /// The copy + flip + cleanup body of [`migrate_slots`]; the window
    /// is already open when this runs.
    fn run_migration(
        &self,
        slots: &[usize],
        to: usize,
        at_op: u64,
        started: Instant,
    ) -> Result<ReshardEvent, StoreError> {
        let _reshard = trace::span(trace::Category::Reshard, slots.len() as u64);
        let router = self.router();
        let mut in_win = vec![false; SLOTS];
        for &slot in slots {
            in_win[slot] = true;
        }
        let in_window = |slot: usize| in_win[slot];

        // Per-source key snapshots: keys only — values are re-read at
        // copy time under the serial lock, so a write that lands after
        // the snapshot can never be undone by a stale copy.
        let mut sources: Vec<(usize, Vec<Bytes>)> = Vec::new();
        for &slot in slots {
            let owner = router.shard_of_slot(slot);
            if owner != to && !sources.iter().any(|(s, _)| *s == owner) {
                sources.push((owner, Vec::new()));
            }
        }
        if sources.is_empty() {
            return Err(StoreError::InvalidArgument(
                "no slots to move: every named slot already belongs to the target".to_string(),
            ));
        }
        for (owner, keys) in &mut sources {
            let shard = self.shard(*owner);
            if !shard.supports_scan() {
                return Err(StoreError::Unsupported(
                    "slot migration requires scannable source shards",
                ));
            }
            let _scope = trace::shard_scope(*owner as u64);
            for (key, _) in shard.scan(&[], &SCAN_HI)? {
                let slot = slot_of_key(&key);
                if in_window(slot) && router.shard_of_slot(slot) == *owner {
                    keys.push(key);
                }
            }
        }

        // Transfer window: chunked, serialized copy.
        let target = self.shard(to);
        let mut keys_copied = 0u64;
        for (owner, keys) in &sources {
            let source = self.shard(*owner);
            for chunk in keys.chunks(COPY_CHUNK) {
                let _serial = self.serial.lock();
                let _span = trace::span(trace::Category::SlotMigration, chunk.len() as u64);
                let _scope = trace::shard_scope(to as u64);
                for key in chunk {
                    // Re-read under the lock: a double-applied delete
                    // since the snapshot means there is nothing to copy.
                    if let Some(value) = source.get(key)? {
                        target.put(key, &value)?;
                        keys_copied += 1;
                    }
                }
            }
        }

        // Atomic flip: successor map in, window closed. The elapsed
        // time of this block is the migration's pause — the only
        // moment the whole store briefly holds out every operation.
        let pause_started;
        let map_version;
        {
            let _serial = self.serial.lock();
            pause_started = Instant::now();
            let next = SlotTable::from_router(self.router.read().as_ref()).reassign(slots, to);
            map_version = next.version();
            *self.router.write() = Arc::new(next);
            *self.migration.write() = None;
        }
        let pause_us = pause_started.elapsed().as_micros() as u64;

        // Cleanup: the moved keys (snapshot + anything double-applied
        // during the window) are stale on their old owners now.
        for (owner, _) in &sources {
            let source = self.shard(*owner);
            let _scope = trace::shard_scope(*owner as u64);
            for (key, _) in source.scan(&[], &SCAN_HI)? {
                if in_window(slot_of_key(&key)) {
                    source.delete(&key)?;
                }
            }
        }

        let event = ReshardEvent {
            at_op,
            from: sources[0].0,
            to,
            slots: slots.len(),
            keys: keys_copied,
            pause_us,
            copy_us: started.elapsed().as_micros() as u64,
            map_version,
        };
        self.events.lock().push(event.clone());
        Ok(event)
    }

    // -----------------------------------------------------------------
    // Routing plumbing
    // -----------------------------------------------------------------

    /// Applies one write through the router, double-applying to the
    /// migration target when `key`'s slot is inside an open transfer
    /// window.
    fn write_routed(
        &self,
        key: &[u8],
        apply: impl Fn(&dyn StateStore) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let slot = slot_of_key(key);
        {
            // Fast path: pin the window state for the whole apply, so a
            // migration cannot open (and its copier start) between the
            // check and the write landing.
            let window = self.migration.read();
            match window.as_ref() {
                Some(m) if m.migrating[slot] => {} // slow path below
                _ => {
                    let s = self.router.read().shard_of_slot(slot);
                    let shards = self.shards.read();
                    let _scope = trace::shard_scope(s as u64);
                    return apply(shards[s].as_ref());
                }
            }
        }
        // Double-apply path. The serial lock is acquired with no other
        // lock held (lock order), then the window is re-checked: the
        // flip may have closed it while we waited.
        let _serial = self.serial.lock();
        let window = self.migration.read();
        let s = self.router.read().shard_of_slot(slot);
        let shards = self.shards.read();
        let _scope = trace::shard_scope(s as u64);
        apply(shards[s].as_ref())?;
        if let Some(m) = window.as_ref() {
            if m.migrating[slot] && m.to != s {
                apply(shards[m.to].as_ref())?;
            }
        }
        Ok(())
    }

    /// Applies one op of a batch's migrating-slot group: routed like
    /// [`write_routed`], returning the positional result.
    fn apply_one_routed(&self, op: &Op) -> Result<BatchResult, StoreError> {
        match op {
            Op::Get { key } => Ok(BatchResult::Value(self.get(key)?)),
            Op::Put { key, value } => {
                self.put(key, value)?;
                Ok(BatchResult::Applied)
            }
            Op::Merge { key, operand } => {
                self.merge(key, operand)?;
                Ok(BatchResult::Applied)
            }
            Op::Delete { key } => {
                self.delete(key)?;
                Ok(BatchResult::Applied)
            }
        }
    }

    /// Re-stitches per-group results into positional order.
    fn stitch(batch_len: usize, parts: Vec<(Vec<usize>, Vec<BatchResult>)>) -> Vec<BatchResult> {
        let mut out: Vec<Option<BatchResult>> = vec![None; batch_len];
        for (indices, results) in parts {
            for (i, r) in indices.into_iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every op belongs to exactly one group"))
            .collect()
    }
}

impl StateStore for ShardedStore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        // Reads go to the current owner alone: it is authoritative
        // until the flip, and the flip (plus the cleanup behind it)
        // waits out this pin of the window state.
        let _window = self.migration.read();
        let s = self.router.read().route(key);
        let shards = self.shards.read();
        let _scope = trace::shard_scope(s as u64);
        shards[s].get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.write_routed(key, |shard| shard.put(key, value))
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.write_routed(key, |shard| shard.merge(key, operand))
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.write_routed(key, |shard| shard.delete(key))
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        // Hash routing scatters a key range over every shard: scan them
        // all and merge. Each entry is kept only if the current map
        // routes its key to the shard it came from — this drops
        // in-window duplicates on a migration target and pre-cleanup
        // leftovers on a source. A global sort of the concatenation
        // restores ascending key order.
        let _window = self.migration.read();
        let router = self.router.read().clone();
        let shards = self.shards.read();
        let mut out = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            let _scope = trace::shard_scope(s as u64);
            for (key, value) in shard.scan(lo, hi)? {
                if router.route(&key) == s {
                    out.push((key, value));
                }
            }
        }
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        Ok(out)
    }

    fn supports_scan(&self) -> bool {
        self.shards.read()[0].supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.shards.read()[0].supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        let shards = self.shards.read();
        for (s, shard) in shards.iter().enumerate() {
            let _scope = trace::shard_scope(s as u64);
            shard.flush()?;
        }
        Ok(())
    }

    /// The weakest durability across shards (they are homogeneous in
    /// practice, so this is simply shard 0's descriptor).
    fn durability(&self) -> Durability {
        self.shards.read()[0].durability()
    }

    /// Takes a **super-checkpoint**: one sub-checkpoint per shard under
    /// `shard-<i>/`, plus a topology-stamped super-manifest recording
    /// the shard count and the partition-map digest. Restore validates
    /// both, so a checkpoint can never be silently re-routed under a
    /// different topology.
    ///
    /// The serial lock orders the cut against migrations: a map flip
    /// cannot land between two shards' sub-checkpoints. An *open*
    /// transfer window is rejected outright — mid-copy both owners hold
    /// partial slot contents, which no single manifest can describe.
    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        let _serial = self.serial.lock();
        if self.migration.read().is_some() {
            return Err(StoreError::InvalidArgument(
                "cannot checkpoint while a slot migration window is open".to_string(),
            ));
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::path_io("create", dir.to_path_buf(), e))?;
        let digest = self.partition_digest();
        let shards = self.shards.read();
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.shards = shards.len() as u32;
        manifest.partition_digest = Some(digest);
        for (i, shard) in shards.iter().enumerate() {
            let _scope = trace::shard_scope(i as u64);
            let sub = shard.checkpoint(&shard_checkpoint_dir(dir, i))?;
            // One aggregate entry per shard; the authoritative file list
            // lives in the sub-manifest.
            manifest.push_file(format!("shard-{i}"), sub.total_bytes);
            manifest.reused_files += sub.reused_files;
        }
        crate::durability::fsync_dir(dir)?;
        manifest.save(dir)?;
        Ok(manifest)
    }

    /// Restores a super-checkpoint taken by [`checkpoint`]. The shard
    /// count and partition-map digest must match the current topology
    /// exactly ([`StoreError::Corruption`] otherwise): the sub-stores
    /// were cut under that map, and any other routing would scatter
    /// their keys. A failing shard aborts mid-way; rerun the restore to
    /// converge (each sub-restore is itself all-or-nothing).
    ///
    /// [`checkpoint`]: StateStore::checkpoint
    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        let manifest = CheckpointManifest::load(dir)?;
        if manifest.store != self.name() {
            return Err(StoreError::Corruption(format!(
                "checkpoint was taken by store {:?}, not {:?}",
                manifest.store,
                self.name()
            )));
        }
        let _serial = self.serial.lock();
        if self.migration.read().is_some() {
            return Err(StoreError::InvalidArgument(
                "cannot restore while a slot migration window is open".to_string(),
            ));
        }
        let shards = self.shards.read();
        if manifest.shards as usize != shards.len() {
            return Err(StoreError::Corruption(format!(
                "checkpoint spans {} shards but the store has {}",
                manifest.shards,
                shards.len()
            )));
        }
        let digest = self.partition_digest();
        match manifest.partition_digest.as_deref() {
            Some(d) if d == digest => {}
            Some(d) => {
                return Err(StoreError::Corruption(format!(
                    "checkpoint partition digest {d} does not match the current map {digest}"
                )));
            }
            None => {
                return Err(StoreError::Corruption(
                    "sharded checkpoint is missing its partition digest".to_string(),
                ));
            }
        }
        for (i, shard) in shards.iter().enumerate() {
            let _scope = trace::shard_scope(i as u64);
            shard.restore(&shard_checkpoint_dir(dir, i))?;
        }
        Ok(())
    }

    /// Counters summed by name across shards.
    fn internal_counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for shard in self.shards.read().iter() {
            for (name, value) in shard.internal_counters() {
                match out.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, v)) => *v += value,
                    None => out.push((name, value)),
                }
            }
        }
        out
    }

    /// Per-shard snapshots aggregated into one: counters add,
    /// histograms merge, and gauges *sum* (shard gauges are sizes and
    /// occupancies, where the whole-store reading is the total — unlike
    /// `MetricsSnapshot::merge`, which treats `other` as a newer
    /// reading of the same component). A `shards` gauge records the
    /// shard count and `partition_map_version` the router epoch.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut agg = MetricsSnapshot::new();
        let mut any = false;
        let (shard_count, map_version) = {
            let shards = self.shards.read();
            for shard in shards.iter() {
                let Some(snap) = shard.metrics() else {
                    continue;
                };
                any = true;
                for (name, value) in &snap.counters {
                    agg.push_counter(name, *value);
                }
                for (name, value) in &snap.gauges {
                    match agg.gauges.iter_mut().find(|(n, _)| n == name) {
                        Some((_, v)) => *v += *value,
                        None => agg.gauges.push((name.clone(), *value)),
                    }
                }
                for (name, hist) in &snap.histograms {
                    match agg.histograms.iter_mut().find(|(n, _)| n == name) {
                        Some((_, h)) => h.merge(hist),
                        None => agg.histograms.push((name.clone(), hist.clone())),
                    }
                }
            }
            (shards.len(), self.router.read().version())
        };
        if !any {
            return None;
        }
        agg.push_gauge("shards", shard_count as i64);
        agg.push_gauge("partition_map_version", map_version as i64);
        agg.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        agg.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Some(agg)
    }

    /// Splits the batch by shard, applies sub-batches in parallel, and
    /// re-stitches positional results.
    ///
    /// Each shard receives its ops in original relative order, so
    /// per-key semantics match the unsharded store exactly (a key never
    /// crosses shards mid-batch: partitioning decisions use one pinned
    /// map epoch and window snapshot). Ops whose slots sit inside an
    /// open transfer window are set aside and applied through the
    /// serialized double-apply path after the fan-out; a key is either
    /// wholly in the fan-out or wholly in that group, so per-key order
    /// still holds. Group-commit savings multiply: N shards fsync
    /// their WALs concurrently instead of serializing on one.
    ///
    /// On error the first failing shard's error is returned; sub-batches
    /// already applied on other shards remain applied, matching the
    /// trait's partial-application contract.
    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // Partition under one pinned window + epoch, and apply the
        // fan-out before the guards drop, so a migration opening
        // mid-batch cannot start copying underneath these writes. Ops
        // whose slots sit inside an open window go to a separate group
        // applied *after* the guards drop — the double-apply path
        // re-pins per op, and serial is never acquired under migration
        // (the lock order).
        let mut dual: (Vec<usize>, Vec<Op>) = (Vec::new(), Vec::new());
        let mut done: Vec<(Vec<usize>, Vec<BatchResult>)> = Vec::new();
        {
            let window = self.migration.read();
            let router = self.router.read().clone();
            let shards = self.shards.read();
            let mut by_shard: Vec<(Vec<usize>, Vec<Op>)> =
                vec![(Vec::new(), Vec::new()); shards.len()];
            for (i, op) in batch.iter().enumerate() {
                let slot = slot_of_key(op.key());
                if let Some(m) = window.as_ref() {
                    if m.migrating[slot] {
                        dual.0.push(i);
                        dual.1.push(op.clone());
                        continue;
                    }
                }
                let s = router.shard_of_slot(slot);
                by_shard[s].0.push(i);
                by_shard[s].1.push(op.clone());
            }
            let parts: Vec<(usize, Vec<usize>, Vec<Op>)> = by_shard
                .into_iter()
                .enumerate()
                .filter(|(_, part)| !part.0.is_empty())
                .map(|(s, (indices, ops))| (s, indices, ops))
                .collect();

            if parts.len() <= 1 || batch.len() < PARALLEL_BATCH_MIN {
                // One shard, or a batch too small to pay for thread
                // spawns: apply sequentially, still batched per shard.
                for (s, indices, ops) in parts {
                    let _scope = trace::shard_scope(s as u64);
                    let results = shards[s].apply_batch(&ops)?;
                    done.push((indices, results));
                }
            } else {
                let applied = std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|(s, _, ops)| {
                            let shard = shards[*s].clone();
                            let s = *s;
                            scope.spawn(move || {
                                let _scope = trace::shard_scope(s as u64);
                                shard.apply_batch(ops)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard apply thread panicked"))
                        .collect::<Vec<_>>()
                });
                let mut first_err = None;
                for ((_, indices, _), result) in parts.into_iter().zip(applied) {
                    match result {
                        Ok(results) => done.push((indices, results)),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
            }
        }
        // Migrating-slot group: serialized, in original relative order.
        // A key is either wholly here or wholly in the fan-out (the
        // partition used one window snapshot), so per-key order holds.
        if !dual.0.is_empty() {
            let mut results = Vec::with_capacity(dual.1.len());
            for op in &dual.1 {
                results.push(self.apply_one_routed(op)?);
            }
            done.push((dual.0, results));
        }
        Ok(Self::stitch(batch.len(), done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    fn sharded_mem(n: usize) -> ShardedStore {
        ShardedStore::from_factory(n, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
            .unwrap()
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let err =
            ShardedStore::from_factory(0, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
                .unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "got {err:?}");
        let err = ShardedStore::from_stores(Vec::new()).unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "got {err:?}");
    }

    #[test]
    fn mismatched_router_is_a_config_error() {
        let stores: Vec<Arc<dyn StateStore>> = (0..3)
            .map(|_| Arc::new(MemStore::new()) as Arc<dyn StateStore>)
            .collect();
        let router: Arc<dyn Router> = Arc::new(SlotTable::identity(4));
        let err = ShardedStore::from_stores_with_router(stores, router).unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "got {err:?}");
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let s = sharded_mem(4);
        for i in 0..200u64 {
            let key = i.to_be_bytes();
            let owner = s.shard_for_key(&key);
            assert!(owner < 4);
            assert_eq!(owner, s.shard_for_key(&key), "stable routing");
            // 4 divides SLOTS, so the identity table *is* the legacy
            // modulo router.
            assert_eq!(owner, shard_of(&key, 4));
        }
        // Every shard owns some keys (FNV spreads 200 keys well).
        let owned: std::collections::HashSet<usize> = (0..200u64)
            .map(|i| s.shard_for_key(&i.to_be_bytes()))
            .collect();
        assert_eq!(owned.len(), 4);
    }

    #[test]
    fn point_ops_round_trip_through_shards() {
        let s = sharded_mem(4);
        for i in 0..100u64 {
            s.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..])
            );
        }
        s.merge(b"m", b"ab").unwrap();
        s.merge(b"m", b"cd").unwrap();
        assert_eq!(s.get(b"m").unwrap().as_deref(), Some(&b"abcd"[..]));
        s.delete(b"m").unwrap();
        assert_eq!(s.get(b"m").unwrap(), None);
        // Keys land on the shard the router says they do.
        let key = 42u64.to_be_bytes();
        let owner = s.shard_for_key(&key);
        assert!(s.shard(owner).get(&key).unwrap().is_some());
        for other in (0..4).filter(|o| *o != owner) {
            assert!(s.shard(other).get(&key).unwrap().is_none());
        }
    }

    #[test]
    fn scan_merges_all_shards_in_key_order() {
        let s = sharded_mem(4);
        for i in 0..50u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        let hits = s.scan(&10u64.to_be_bytes(), &19u64.to_be_bytes()).unwrap();
        let keys: Vec<u64> = hits
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_ref().try_into().unwrap()))
            .collect();
        assert_eq!(keys, (10..=19).collect::<Vec<u64>>());
    }

    #[test]
    fn apply_batch_stitches_positional_results() {
        for shards in [1usize, 2, 3, 7] {
            let s = sharded_mem(shards);
            let mut ops = Vec::new();
            for i in 0..64u64 {
                ops.push(Op::put(i.to_be_bytes().to_vec(), vec![i as u8]));
            }
            for i in 0..64u64 {
                ops.push(Op::get(i.to_be_bytes().to_vec()));
            }
            let out = s.apply_batch(&ops).unwrap();
            assert_eq!(out.len(), 128);
            for i in 0..64usize {
                assert_eq!(out[i], BatchResult::Applied, "shards={shards} op {i}");
                assert_eq!(
                    out[64 + i].value().map(|v| v.as_ref()),
                    Some(&[i as u8][..]),
                    "shards={shards} get {i}"
                );
            }
        }
    }

    #[test]
    fn small_batches_avoid_thread_fanout_but_stay_correct() {
        let s = sharded_mem(8);
        let ops = vec![
            Op::put(b"a".to_vec(), b"1".to_vec()),
            Op::put(b"b".to_vec(), b"2".to_vec()),
            Op::get(b"a".to_vec()),
        ];
        let out = s.apply_batch(&ops).unwrap();
        assert_eq!(out[2].value().map(|v| v.as_ref()), Some(&b"1"[..]));
        assert!(s.apply_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn counters_and_metrics_aggregate_across_shards() {
        let s = sharded_mem(4);
        for i in 0..40u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in 0..10u64 {
            s.get(&i.to_be_bytes()).unwrap();
        }
        let counters = s.internal_counters();
        assert!(counters.contains(&("puts".to_string(), 40)));
        assert!(counters.contains(&("gets".to_string(), 10)));
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("puts"), Some(40));
        // Gauges sum across shards: 40 distinct keys in total.
        assert_eq!(snap.gauge("live_keys"), Some(40));
        assert_eq!(snap.gauge("shards"), Some(4));
        assert_eq!(snap.gauge("partition_map_version"), Some(1));
    }

    #[test]
    fn single_shard_behaves_like_inner_store() {
        let s = sharded_mem(1);
        s.put(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(s.name(), "mem");
        assert!(s.supports_merge());
        assert!(s.supports_scan());
        assert_eq!(s.shard_for_key(b"anything"), 0);
    }

    /// A store that records which shard context each call ran under.
    struct ShardProbe {
        seen: parking_lot::Mutex<Vec<u64>>,
    }

    impl StateStore for ShardProbe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn get(&self, _key: &[u8]) -> Result<Option<Bytes>, StoreError> {
            self.seen.lock().push(trace::current_shard());
            Ok(None)
        }
        fn put(&self, _key: &[u8], _value: &[u8]) -> Result<(), StoreError> {
            self.seen.lock().push(trace::current_shard());
            Ok(())
        }
        fn merge(&self, _key: &[u8], _operand: &[u8]) -> Result<(), StoreError> {
            Ok(())
        }
        fn delete(&self, _key: &[u8]) -> Result<(), StoreError> {
            Ok(())
        }
    }

    #[test]
    fn routed_calls_run_inside_the_shard_scope() {
        let probes: Vec<Arc<ShardProbe>> = (0..4)
            .map(|_| {
                Arc::new(ShardProbe {
                    seen: parking_lot::Mutex::new(Vec::new()),
                })
            })
            .collect();
        let s = ShardedStore::from_stores(
            probes
                .iter()
                .map(|p| p.clone() as Arc<dyn StateStore>)
                .collect(),
        )
        .unwrap();
        for i in 0..32u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
            s.get(&i.to_be_bytes()).unwrap();
        }
        for (idx, probe) in probes.iter().enumerate() {
            let seen = probe.seen.lock().clone();
            assert!(
                seen.iter().all(|&tag| tag == idx as u64),
                "shard {idx} saw contexts {seen:?}"
            );
        }
        // The caller's thread is untagged once the calls return.
        assert_eq!(trace::current_shard(), trace::NO_SHARD);
    }

    #[test]
    fn batch_workers_run_inside_the_shard_scope() {
        let probes: Vec<Arc<ShardProbe>> = (0..4)
            .map(|_| {
                Arc::new(ShardProbe {
                    seen: parking_lot::Mutex::new(Vec::new()),
                })
            })
            .collect();
        let s = ShardedStore::from_stores(
            probes
                .iter()
                .map(|p| p.clone() as Arc<dyn StateStore>)
                .collect(),
        )
        .unwrap();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::put(i.to_be_bytes().to_vec(), b"v".to_vec()))
            .collect();
        s.apply_batch(&ops).unwrap();
        for (idx, probe) in probes.iter().enumerate() {
            let seen = probe.seen.lock().clone();
            assert!(!seen.is_empty(), "shard {idx} got no ops");
            assert!(
                seen.iter().all(|&tag| tag == idx as u64),
                "shard {idx} saw contexts {seen:?}"
            );
        }
    }

    // -----------------------------------------------------------------
    // Live-resharding tests
    // -----------------------------------------------------------------

    /// Fills a store with `n` keys whose values encode the key.
    fn fill(s: &ShardedStore, n: u64) {
        for i in 0..n {
            s.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
    }

    /// Asserts all `n` keys read back correctly through the router.
    fn check(s: &ShardedStore, n: u64) {
        for i in 0..n {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key {i}"
            );
        }
    }

    #[test]
    fn migrate_slots_moves_keys_and_flips_the_map() {
        let s = sharded_mem(4);
        fill(&s, 500);
        let before = s.partition_digest();
        let moved = SlotTable::identity(4).slots_of(0);
        let event = s.migrate_slots(&moved, 2, 123).unwrap();
        assert_eq!(event.from, 0);
        assert_eq!(event.to, 2);
        assert_eq!(event.at_op, 123);
        assert_eq!(event.slots, moved.len());
        assert!(event.keys > 0, "shard 0 owned keys to move");
        assert_eq!(event.map_version, 2);
        assert_ne!(s.partition_digest(), before);
        // Every key still reads back; shard 0 is empty now.
        check(&s, 500);
        assert!(
            s.shard(0).scan(&[], &SCAN_HI).unwrap().is_empty(),
            "old owner cleaned"
        );
        // Scans see each key exactly once.
        let all = s.scan(&[], &SCAN_HI).unwrap();
        assert_eq!(all.len(), 500);
        // The event is recorded.
        assert_eq!(s.reshard_events(), vec![event]);
    }

    #[test]
    fn split_shard_grows_topology_via_the_factory() {
        let s = sharded_mem(4);
        fill(&s, 400);
        let event = s.split_shard(1, 0).unwrap();
        assert_eq!(s.shard_count(), 5);
        assert_eq!(event.to, 4);
        assert_eq!(event.from, 1);
        assert!(event.keys > 0);
        check(&s, 400);
        // The new shard actually owns keys now.
        assert!(!s.shard(4).scan(&[], &SCAN_HI).unwrap().is_empty());
        // Router routes some keys to the new shard.
        let router = s.router();
        assert_eq!(router.shards(), 5);
        assert_eq!(router.version(), 2);
    }

    #[test]
    fn split_without_factory_is_a_config_error() {
        let stores: Vec<Arc<dyn StateStore>> = (0..2)
            .map(|_| Arc::new(MemStore::new()) as Arc<dyn StateStore>)
            .collect();
        let s = ShardedStore::from_stores(stores).unwrap();
        let err = s.split_shard(0, 0).unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "got {err:?}");
    }

    #[test]
    fn reshard_validates_shard_indices() {
        let s = sharded_mem(2);
        assert!(matches!(
            s.reshard(9, 0, 0).unwrap_err(),
            StoreError::InvalidArgument(_)
        ));
        assert!(matches!(
            s.reshard(0, 0, 0).unwrap_err(),
            StoreError::InvalidArgument(_)
        ));
        assert!(matches!(
            s.reshard(0, 7, 0).unwrap_err(),
            StoreError::InvalidArgument(_)
        ));
    }

    #[test]
    fn migration_under_concurrent_writes_loses_nothing() {
        // Hammer the store from writer threads while a migration moves
        // shard 0's slots; every op must succeed and every key must
        // read back with its final value.
        let s = Arc::new(sharded_mem(4));
        fill(&s, 1_000);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let s = s.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut rounds = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for i in (w * 333)..(w * 333 + 333) {
                            let i = i as u64;
                            s.put(&i.to_be_bytes(), &(i + rounds).to_le_bytes())
                                .unwrap();
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();
        // Run two migrations back to back under load.
        let moved = SlotTable::identity(4).slots_of(0);
        let e1 = s.migrate_slots(&moved, 1, 0).unwrap();
        let e2 = s.split_shard(2, 0).unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let rounds: Vec<u64> = writers.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(e1.keys > 0 && e2.keys > 0);
        assert_eq!(s.shard_count(), 5);
        // Final state: every key holds the value its writer last wrote.
        for (w, &r) in rounds.iter().enumerate() {
            for i in (w * 333)..(w * 333 + 333) {
                let i = i as u64;
                let got = s.get(&i.to_be_bytes()).unwrap().expect("key lost");
                let got = u64::from_le_bytes(got.as_ref().try_into().unwrap());
                // The last full round wrote i + (rounds - 1); a partial
                // final round may have written i + rounds.
                assert!(
                    got == i + r || got == i.wrapping_add(r.saturating_sub(1)),
                    "key {i}: got {got}, rounds {r}"
                );
            }
        }
        // Keys 999..1000 untouched by writers still read back.
        assert_eq!(
            s.get(&999u64.to_be_bytes()).unwrap().as_deref(),
            Some(&999u64.to_le_bytes()[..])
        );
        // No duplicate keys in a full scan.
        let all = s.scan(&[], &SCAN_HI).unwrap();
        assert_eq!(all.len(), 1_000);
        assert_eq!(s.reshard_events().len(), 2);
    }

    #[test]
    fn migration_emits_reshard_and_slot_migration_spans() {
        let session = trace::start_session();
        let s = sharded_mem(2);
        fill(&s, 200);
        let moved = SlotTable::identity(2).slots_of(0);
        s.migrate_slots(&moved, 1, 0).unwrap();
        let log = session.finish();
        assert!(
            log.spans_of(trace::Category::Reshard).count() >= 1,
            "whole-migration span missing"
        );
        assert!(
            log.spans_of(trace::Category::SlotMigration).count() >= 1,
            "copy-chunk spans missing"
        );
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gadget-sharded-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn super_checkpoint_roundtrips_with_topology_stamp() {
        let s = sharded_mem(4);
        fill(&s, 300);
        let dir = tmp("super");
        let manifest = s.checkpoint(&dir).unwrap();
        assert_eq!(manifest.shards, 4);
        assert_eq!(manifest.files.len(), 4);
        assert_eq!(
            manifest.partition_digest.as_deref(),
            Some(s.partition_digest().as_str())
        );
        // Diverge, then restore to the cut.
        for i in 0..300u64 {
            s.put(&i.to_be_bytes(), b"diverged").unwrap();
        }
        s.put(b"extra", b"gone").unwrap();
        s.restore(&dir).unwrap();
        check(&s, 300);
        assert_eq!(s.get(b"extra").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_a_flipped_partition_map() {
        let s = sharded_mem(4);
        fill(&s, 300);
        let dir = tmp("flip");
        s.checkpoint(&dir).unwrap();
        // Flip the map: the digest no longer matches the checkpoint.
        let moved = SlotTable::identity(4).slots_of(0);
        s.migrate_slots(&moved, 2, 0).unwrap();
        let err = s.restore(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corruption(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_a_different_shard_count() {
        let a = sharded_mem(4);
        fill(&a, 100);
        let dir = tmp("count");
        a.checkpoint(&dir).unwrap();
        let b = sharded_mem(2);
        let err = b.restore(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corruption(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_is_rejected_inside_a_migration_window() {
        let s = sharded_mem(2);
        *s.migration.write() = Some(MigrationState {
            migrating: vec![false; SLOTS],
            to: 1,
        });
        let dir = tmp("window");
        let err = s.checkpoint(&dir).unwrap_err();
        assert!(matches!(err, StoreError::InvalidArgument(_)), "got {err:?}");
        *s.migration.write() = None;
    }

    #[test]
    fn concurrent_migrations_are_rejected() {
        // The second migration must fail while the first's window is
        // open. Simulate by opening the window directly.
        let s = sharded_mem(2);
        *s.migration.write() = Some(MigrationState {
            migrating: vec![false; SLOTS],
            to: 1,
        });
        let err = s.migrate_slots(&[0], 1, 0).unwrap_err();
        assert!(matches!(err, StoreError::InvalidArgument(_)), "got {err:?}");
        *s.migration.write() = None;
    }
}
