//! The [`StateStore`] trait.

use bytes::Bytes;
use gadget_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;
use std::path::Path;

use crate::durability::{CheckpointManifest, Durability};
use crate::error::StoreError;

/// The per-operation outcome of [`StateStore::apply_batch`].
///
/// Results are positional: `results[i]` is the outcome of `batch[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchResult {
    /// Outcome of a `get`: the value, or `None` if the key was absent.
    Value(Option<Bytes>),
    /// Outcome of a write (`put`, `merge`, `delete`).
    Applied,
}

impl BatchResult {
    /// The value returned by a `get`, or `None` for writes and missing keys.
    pub fn value(&self) -> Option<&Bytes> {
        match self {
            BatchResult::Value(v) => v.as_ref(),
            BatchResult::Applied => None,
        }
    }

    /// Whether this result is a `get` that found a value.
    pub fn found(&self) -> bool {
        matches!(self, BatchResult::Value(Some(_)))
    }
}

/// Applies each op through the store's single-op methods, in order.
///
/// This is the default [`StateStore::apply_batch`] body; wrappers also use
/// it for single-op batches so the per-op instrumentation path (sampling,
/// per-op network delays) stays identical to unbatched operation.
pub fn apply_ops_serially<S: StateStore + ?Sized>(
    store: &S,
    batch: &[Op],
) -> Result<Vec<BatchResult>, StoreError> {
    let mut out = Vec::with_capacity(batch.len());
    for op in batch {
        out.push(match op {
            Op::Get { key } => BatchResult::Value(store.get(key)?),
            Op::Put { key, value } => {
                store.put(key, value)?;
                BatchResult::Applied
            }
            Op::Merge { key, operand } => {
                store.merge(key, operand)?;
                BatchResult::Applied
            }
            Op::Delete { key } => {
                store.delete(key)?;
                BatchResult::Applied
            }
        });
    }
    Ok(out)
}

/// A key-value state store, as seen by a streaming operator task.
///
/// Methods take `&self`: every implementation synchronizes internally so
/// that multiple operator tasks may share one store instance, matching the
/// paper's concurrent-operators experiment (§6.4). The dataflow model still
/// guarantees a single *writer* per key, but the store must not assume a
/// single client.
///
/// # Merge semantics
///
/// `merge(key, operand)` is a lazy read-modify-write that *appends*
/// `operand` to the existing value (the list-append merge operator that
/// stream processors use for window buckets). Stores with native merge
/// support (the LSM substrates) buffer operands and fold them on read or
/// compaction; stores without it (`supports_merge() == false`) may emulate
/// it as `get` + concatenate + `put`, which is exactly the "reading and
/// copying a growing vector" cost the paper attributes to FASTER and
/// BerkeleyDB on holistic operators (§6.5).
pub trait StateStore: Send + Sync {
    /// A short human-readable store name for reports (e.g. `"lsm"`).
    fn name(&self) -> &'static str;

    /// Returns the value stored under `key`, or `None`.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError>;

    /// Stores `value` under `key`, overwriting any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;

    /// Appends `operand` to the value stored under `key`.
    ///
    /// If the key does not exist, the operand becomes the initial value.
    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError>;

    /// Removes `key` from the store. Deleting a missing key is not an error.
    fn delete(&self, key: &[u8]) -> Result<(), StoreError>;

    /// Returns every live `(key, value)` pair with `lo <= key <= hi`, in
    /// ascending key order.
    ///
    /// Ordered stores (LSM, B+Tree) support this natively; hash-indexed
    /// stores return [`StoreError::Unsupported`], mirroring the real
    /// systems they model (FASTER has no range scans). Check
    /// [`StateStore::supports_scan`] first.
    ///
    /// Keys are returned as [`Bytes`], like every other value-bearing API
    /// on this trait, so callers can hold scan results without copying.
    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        let _ = (lo, hi);
        Err(StoreError::Unsupported("range scan"))
    }

    /// Whether [`StateStore::scan`] is implemented.
    fn supports_scan(&self) -> bool {
        false
    }

    /// Whether the store supports lazy merges natively.
    ///
    /// When `false`, the performance evaluator translates `merge` requests
    /// into read-modify-write sequences before timing them.
    fn supports_merge(&self) -> bool {
        false
    }

    /// Flushes buffered writes to durable storage (no-op by default).
    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Implementation-specific counters (compactions, cache hits, …) for
    /// reports and ablation studies. Empty by default.
    fn internal_counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// A point-in-time snapshot of the store's metrics, or `None` for
    /// stores that are not instrumented.
    ///
    /// This returns a value (not live instrument handles) so callers
    /// can hold, merge, and serialize readings without worrying about
    /// instruments going stale across flushes or restarts. Instrumented
    /// stores assemble the snapshot from their internal registry plus
    /// any computed gauges (e.g. live bytes derived from shard state)
    /// at call time.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// How this store survives process death. Defaults to
    /// [`Durability::Ephemeral`]; file-backed stores override.
    fn durability(&self) -> Durability {
        Durability::Ephemeral
    }

    /// Writes a point-in-time snapshot of the store's state into `dir`,
    /// returning the manifest describing it.
    ///
    /// The snapshot is *consistent*: it reflects some prefix of the
    /// store's serialized operation history, even if writes race the
    /// checkpoint. Re-checkpointing into the same directory is allowed
    /// and may reuse unchanged immutable files (incremental mode); the
    /// manifest's `reused_files` reports how many were skipped. The
    /// manifest is written last, so a directory with a readable manifest
    /// is always a complete checkpoint.
    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        let _ = dir;
        Err(StoreError::Unsupported("checkpoint"))
    }

    /// Replaces the store's current state with the checkpoint in `dir`.
    ///
    /// After a successful restore the store serves exactly the state
    /// captured by the checkpoint; all state written since (including
    /// WAL tails) is discarded. Fails with
    /// [`StoreError::Corruption`] if the checkpoint is incomplete,
    /// fails validation, or was taken by an incompatible store.
    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        let _ = dir;
        Err(StoreError::Unsupported("restore"))
    }

    /// Applies a batch of operations in order, returning one
    /// [`BatchResult`] per op.
    ///
    /// Semantically identical to issuing the ops one at a time; native
    /// implementations amortize per-op costs instead (the LSM takes its
    /// write lock once and group-commits the WAL with a single fsync, the
    /// hash store takes each shard mutex once per batch, the B+Tree holds
    /// its tree lock across the batch). The default falls back to op-by-op
    /// dispatch, so every store is batch-correct even before it is
    /// batch-fast.
    ///
    /// Errors fail the whole call; ops already applied before the failing
    /// one remain applied (same as issuing them individually).
    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        apply_ops_serially(self, batch)
    }
}

/// Cheap atomic operation counters shared by store implementations.
///
/// Stores embed one of these and bump it per public operation so reports
/// can show per-store request mixes without external instrumentation.
/// Built via [`StoreCounters::registered`], the counters live in the
/// store's [`MetricsRegistry`] and show up in its snapshots for free.
#[derive(Debug, Default)]
pub struct StoreCounters {
    gets: Counter,
    puts: Counter,
    merges: Counter,
    deletes: Counter,
}

impl StoreCounters {
    /// Creates zeroed counters not tied to any registry.
    pub fn new() -> Self {
        StoreCounters::default()
    }

    /// Creates counters registered as `gets`/`puts`/`merges`/`deletes`
    /// in `registry`, so registry snapshots include them.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        StoreCounters {
            gets: registry.counter("gets"),
            puts: registry.counter("puts"),
            merges: registry.counter("merges"),
            deletes: registry.counter("deletes"),
        }
    }

    /// Records one `get`.
    pub fn record_get(&self) {
        self.gets.inc();
    }

    /// Records one `put`.
    pub fn record_put(&self) {
        self.puts.inc();
    }

    /// Records one `merge`.
    pub fn record_merge(&self) {
        self.merges.inc();
    }

    /// Records one `delete`.
    pub fn record_delete(&self) {
        self.deletes.inc();
    }

    /// Snapshot of all counters as (name, value) pairs.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        vec![
            ("gets".to_string(), self.gets.get()),
            ("puts".to_string(), self.puts.get()),
            ("merges".to_string(), self.merges.get()),
            ("deletes".to_string(), self.deletes.get()),
        ]
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.gets.get() + self.puts.get() + self.merges.get() + self.deletes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = StoreCounters::new();
        c.record_get();
        c.record_get();
        c.record_put();
        c.record_merge();
        c.record_delete();
        assert_eq!(c.total(), 5);
        let snap = c.snapshot();
        assert!(snap.contains(&("gets".to_string(), 2)));
        assert!(snap.contains(&("puts".to_string(), 1)));
    }
}
