//! The [`StateStore`] trait.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::error::StoreError;

/// A key-value state store, as seen by a streaming operator task.
///
/// Methods take `&self`: every implementation synchronizes internally so
/// that multiple operator tasks may share one store instance, matching the
/// paper's concurrent-operators experiment (§6.4). The dataflow model still
/// guarantees a single *writer* per key, but the store must not assume a
/// single client.
///
/// # Merge semantics
///
/// `merge(key, operand)` is a lazy read-modify-write that *appends*
/// `operand` to the existing value (the list-append merge operator that
/// stream processors use for window buckets). Stores with native merge
/// support (the LSM substrates) buffer operands and fold them on read or
/// compaction; stores without it (`supports_merge() == false`) may emulate
/// it as `get` + concatenate + `put`, which is exactly the "reading and
/// copying a growing vector" cost the paper attributes to FASTER and
/// BerkeleyDB on holistic operators (§6.5).
pub trait StateStore: Send + Sync {
    /// A short human-readable store name for reports (e.g. `"lsm"`).
    fn name(&self) -> &'static str;

    /// Returns the value stored under `key`, or `None`.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError>;

    /// Stores `value` under `key`, overwriting any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;

    /// Appends `operand` to the value stored under `key`.
    ///
    /// If the key does not exist, the operand becomes the initial value.
    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError>;

    /// Removes `key` from the store. Deleting a missing key is not an error.
    fn delete(&self, key: &[u8]) -> Result<(), StoreError>;

    /// Returns every live `(key, value)` pair with `lo <= key <= hi`, in
    /// ascending key order.
    ///
    /// Ordered stores (LSM, B+Tree) support this natively; hash-indexed
    /// stores return [`StoreError::Unsupported`], mirroring the real
    /// systems they model (FASTER has no range scans). Check
    /// [`StateStore::supports_scan`] first.
    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>, StoreError> {
        let _ = (lo, hi);
        Err(StoreError::Unsupported("range scan"))
    }

    /// Whether [`StateStore::scan`] is implemented.
    fn supports_scan(&self) -> bool {
        false
    }

    /// Whether the store supports lazy merges natively.
    ///
    /// When `false`, the performance evaluator translates `merge` requests
    /// into read-modify-write sequences before timing them.
    fn supports_merge(&self) -> bool {
        false
    }

    /// Flushes buffered writes to durable storage (no-op by default).
    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Implementation-specific counters (compactions, cache hits, …) for
    /// reports and ablation studies. Empty by default.
    fn internal_counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Cheap atomic operation counters shared by store implementations.
///
/// Stores embed one of these and bump it per public operation so reports
/// can show per-store request mixes without external instrumentation.
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// Number of `get` calls.
    pub gets: AtomicU64,
    /// Number of `put` calls.
    pub puts: AtomicU64,
    /// Number of `merge` calls.
    pub merges: AtomicU64,
    /// Number of `delete` calls.
    pub deletes: AtomicU64,
}

impl StoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        StoreCounters::default()
    }

    /// Records one `get`.
    pub fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `put`.
    pub fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `merge`.
    pub fn record_merge(&self) {
        self.merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `delete`.
    pub fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all counters as (name, value) pairs.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        vec![
            ("gets".to_string(), self.gets.load(Ordering::Relaxed)),
            ("puts".to_string(), self.puts.load(Ordering::Relaxed)),
            ("merges".to_string(), self.merges.load(Ordering::Relaxed)),
            ("deletes".to_string(), self.deletes.load(Ordering::Relaxed)),
        ]
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
            + self.puts.load(Ordering::Relaxed)
            + self.merges.load(Ordering::Relaxed)
            + self.deletes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = StoreCounters::new();
        c.record_get();
        c.record_get();
        c.record_put();
        c.record_merge();
        c.record_delete();
        assert_eq!(c.total(), 5);
        let snap = c.snapshot();
        assert!(snap.contains(&("gets".to_string(), 2)));
        assert!(snap.contains(&("puts".to_string(), 1)));
    }
}
