//! Store error type.

use std::fmt;
use std::io;

/// Errors returned by [`StateStore`](crate::StateStore) operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// On-disk or in-memory data failed an integrity check.
    Corruption(String),
    /// The store has been closed and can no longer serve requests.
    Closed,
    /// A request was malformed (e.g. an empty key).
    InvalidArgument(String),
    /// The store does not implement the requested operation (e.g. range
    /// scans on a hash-indexed store).
    Unsupported(&'static str),
    /// The store was *constructed* wrong (zero shards, a slot table
    /// whose assignments point past the shard vector, a split without a
    /// shard factory). Distinct from [`StoreError::InvalidArgument`],
    /// which covers malformed *requests* against a well-formed store:
    /// a `Config` error means no request could ever succeed.
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corruption(msg) => write!(f, "corruption: {msg}"),
            StoreError::Closed => write!(f, "store is closed"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            StoreError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io_err = StoreError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(StoreError::Corruption("bad block".into())
            .to_string()
            .contains("bad block"));
        assert_eq!(StoreError::Closed.to_string(), "store is closed");
        assert!(StoreError::InvalidArgument("empty key".into())
            .to_string()
            .contains("empty key"));
        assert!(StoreError::Unsupported("scan").to_string().contains("scan"));
        assert!(StoreError::Config("zero shards".into())
            .to_string()
            .contains("zero shards"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = StoreError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(StoreError::Closed.source().is_none());
    }
}
