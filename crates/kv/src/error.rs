//! Store error type.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors returned by [`StateStore`](crate::StateStore) operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// An I/O operation failed on a known file or directory. Unlike
    /// [`StoreError::Io`] this names *what* was being attempted
    /// (`open`/`write`/`fsync`/`rename`/`copy`/`remove`) and *where*, so
    /// a crash-harness failure is diagnosable from report JSON alone.
    PathIo {
        /// The operation that failed.
        op: &'static str,
        /// The file or directory it failed on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// On-disk or in-memory data failed an integrity check.
    Corruption(String),
    /// The store has been closed and can no longer serve requests.
    Closed,
    /// A request was malformed (e.g. an empty key).
    InvalidArgument(String),
    /// The store does not implement the requested operation (e.g. range
    /// scans on a hash-indexed store).
    Unsupported(&'static str),
    /// The store was *constructed* wrong (zero shards, a slot table
    /// whose assignments point past the shard vector, a split without a
    /// shard factory). Distinct from [`StoreError::InvalidArgument`],
    /// which covers malformed *requests* against a well-formed store:
    /// a `Config` error means no request could ever succeed.
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::PathIo { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            StoreError::Corruption(msg) => write!(f, "corruption: {msg}"),
            StoreError::Closed => write!(f, "store is closed"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            StoreError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::PathIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// A [`StoreError::PathIo`] naming the failing operation and path.
    pub fn path_io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::PathIo {
            op,
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io_err = StoreError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(StoreError::Corruption("bad block".into())
            .to_string()
            .contains("bad block"));
        assert_eq!(StoreError::Closed.to_string(), "store is closed");
        assert!(StoreError::InvalidArgument("empty key".into())
            .to_string()
            .contains("empty key"));
        assert!(StoreError::Unsupported("scan").to_string().contains("scan"));
        assert!(StoreError::Config("zero shards".into())
            .to_string()
            .contains("zero shards"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = StoreError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(StoreError::Closed.source().is_none());
    }

    #[test]
    fn path_io_names_operation_and_path() {
        use std::error::Error;
        let e = StoreError::path_io("fsync", "/data/wal_3.log", io::Error::other("disk gone"));
        let msg = e.to_string();
        assert!(msg.contains("fsync"), "{msg}");
        assert!(msg.contains("/data/wal_3.log"), "{msg}");
        assert!(msg.contains("disk gone"), "{msg}");
        assert!(e.source().is_some());
    }
}
