//! External state management: a remote-store wrapper.
//!
//! The paper considers embedded stores only but notes (§8) that Gadget
//! "can be easily extended to support evaluation of external state
//! management approaches … by implementing the respective KV store
//! wrappers". [`RemoteStore`] is that wrapper: it decorates any embedded
//! store with a deterministic synthetic network round-trip per operation,
//! modelling a disaggregated deployment where compute and state are
//! decoupled (MillWheel/Pravega-style). Latency is busy-waited rather than
//! slept so sub-millisecond RTTs remain accurate.
//!
//! This is a *simulated* network: no socket is opened, no bytes leave
//! the process, and the delay model is exact and reproducible — ideal
//! for controlled what-if studies ("how would this workload behave at
//! 100us RTT?") where real-network jitter would drown the signal. For a
//! *real* wire — TCP framing, kernel buffers, actual backpressure, and
//! thousands of concurrent client connections — use `gadget-server`'s
//! `NetStore`/`Server` pair instead, which speaks a length-prefixed
//! binary protocol over loopback or a real network and reports measured
//! (not modelled) latencies. The real wire is no longer a black box,
//! either: with tracing on, requests carry a wire-level trace context,
//! the drive's run report decomposes each round-trip into measured
//! client-queue / outbound / store-apply / return-path segments, and
//! `gadget trace merge` joins the client and server span files into one
//! clock-aligned timeline (DESIGN.md §19). The two remain complementary:
//! `RemoteStore` answers "what if the network were exactly like this",
//! `gadget-server` answers "what does the network actually do — and
//! where the time went".

use std::time::{Duration, Instant};

use bytes::Bytes;
use gadget_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

use crate::error::StoreError;
use crate::observed::OpTimers;
use crate::store::{apply_ops_serially, BatchResult, StateStore};

/// Synthetic network profile for a remote store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Round-trip time added to every operation.
    pub rtt: Duration,
    /// Additional transfer time per kilobyte of payload.
    pub per_kb: Duration,
}

impl NetworkProfile {
    /// A same-rack datacenter network (~100us RTT, ~10us/KB).
    pub fn datacenter() -> Self {
        NetworkProfile {
            rtt: Duration::from_micros(100),
            per_kb: Duration::from_micros(10),
        }
    }

    /// A same-host loopback deployment (~10us RTT).
    pub fn loopback() -> Self {
        NetworkProfile {
            rtt: Duration::from_micros(10),
            per_kb: Duration::from_micros(1),
        }
    }

    fn delay_for(&self, payload_bytes: usize) -> Duration {
        self.rtt + self.per_kb * (payload_bytes as u32).div_ceil(1024)
    }
}

/// An embedded store made "remote" by a synthetic network.
pub struct RemoteStore<S> {
    inner: S,
    profile: NetworkProfile,
    metrics: MetricsRegistry,
    timers: OpTimers,
    network_bytes: Counter,
}

impl<S: StateStore> RemoteStore<S> {
    /// Wraps `inner` behind the given network profile.
    pub fn new(inner: S, profile: NetworkProfile) -> Self {
        let metrics = MetricsRegistry::new();
        // Every operation already pays at least one synthetic RTT
        // (tens of microseconds), so timing each one is free in
        // relative terms.
        let timers = OpTimers::registered(&metrics, 0);
        let network_bytes = metrics.counter("network_bytes");
        RemoteStore {
            inner,
            profile,
            metrics,
            timers,
            network_bytes,
        }
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn simulate_network(&self, payload_bytes: usize) {
        self.network_bytes.add(payload_bytes as u64);
        let deadline = Instant::now() + self.profile.delay_for(payload_bytes);
        // Busy-wait: sleep() cannot resolve sub-millisecond delays.
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

impl<S: StateStore> StateStore for RemoteStore<S> {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.timers.get.time(|| {
            let result = self.inner.get(key)?;
            self.simulate_network(key.len() + result.as_ref().map_or(0, |v| v.len()));
            Ok(result)
        })
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.timers.put.time(|| {
            self.simulate_network(key.len() + value.len());
            self.inner.put(key, value)
        })
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.timers.merge.time(|| {
            self.simulate_network(key.len() + operand.len());
            self.inner.merge(key, operand)
        })
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.timers.delete.time(|| {
            self.simulate_network(key.len());
            self.inner.delete(key)
        })
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        self.timers.scan.time(|| {
            let result = self.inner.scan(lo, hi)?;
            let bytes: usize = result.iter().map(|(k, v)| k.len() + v.len()).sum();
            self.simulate_network(bytes);
            Ok(result)
        })
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.inner.supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    // Lifecycle calls pass through without a simulated round-trip: a
    // checkpoint is an operator-plane action, not a per-op data path.
    fn durability(&self) -> crate::durability::Durability {
        self.inner.durability()
    }

    fn checkpoint(
        &self,
        dir: &std::path::Path,
    ) -> Result<crate::durability::CheckpointManifest, StoreError> {
        self.inner.checkpoint(dir)
    }

    fn restore(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.inner.restore(dir)
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.inner.internal_counters()
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        // A real client pipelines a batch over one connection: the whole
        // batch pays a single RTT, with transfer time scaling on the summed
        // payload (request keys + write payloads + returned get values).
        let started = Instant::now();
        let out = self.inner.apply_batch(batch)?;
        let bytes: usize = batch
            .iter()
            .zip(&out)
            .map(|(op, res)| {
                op.key().len() + op.payload().len() + res.value().map_or(0, |v| v.len())
            })
            .sum();
        self.simulate_network(bytes);
        self.timers
            .record_batch(batch, started.elapsed().as_nanos() as u64);
        Ok(out)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.inner.metrics().unwrap_or_default();
        snap.merge(&self.metrics.snapshot());
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    #[test]
    fn semantics_pass_through() {
        let s = RemoteStore::new(MemStore::new(), NetworkProfile::loopback());
        s.put(b"k", b"v").unwrap();
        s.merge(b"k", b"+").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v+"[..]));
        s.delete(b"k").unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
        assert!(s.supports_merge());
        assert!(s.supports_scan());
        assert_eq!(s.name(), "remote");
    }

    #[test]
    fn network_latency_is_injected() {
        let local = MemStore::new();
        let remote = RemoteStore::new(
            MemStore::new(),
            NetworkProfile {
                rtt: Duration::from_micros(200),
                per_kb: Duration::ZERO,
            },
        );
        let time_ops = |store: &dyn StateStore| {
            let started = Instant::now();
            for i in 0..100u64 {
                store.put(&i.to_be_bytes(), b"v").unwrap();
            }
            started.elapsed()
        };
        let local_time = time_ops(&local);
        let remote_time = time_ops(&remote);
        // 100 ops × 200us = 20ms minimum for the remote store.
        assert!(remote_time >= Duration::from_millis(18), "{remote_time:?}");
        assert!(remote_time > 4 * local_time);
    }

    #[test]
    fn metrics_capture_latency_and_traffic() {
        let s = RemoteStore::new(MemStore::new(), NetworkProfile::loopback());
        s.put(b"key", b"value").unwrap();
        s.get(b"key").unwrap();
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("put_calls"), Some(1));
        assert_eq!(snap.counter("get_calls"), Some(1));
        // put: 3+5 bytes, get: 3+5 bytes.
        assert_eq!(snap.counter("network_bytes"), Some(16));
        // Latency includes the ~10us synthetic RTT.
        assert!(snap.histogram("put_ns").unwrap().max() >= 10_000);
    }

    #[test]
    fn batch_pays_one_rtt() {
        let profile = NetworkProfile {
            rtt: Duration::from_micros(300),
            per_kb: Duration::ZERO,
        };
        let s = RemoteStore::new(MemStore::new(), profile);
        let ops: Vec<Op> = (0..50u64)
            .map(|i| Op::put(i.to_be_bytes().to_vec(), b"v".to_vec()))
            .collect();
        let started = Instant::now();
        s.apply_batch(&ops).unwrap();
        let batched = started.elapsed();
        // 50 ops op-by-op would cost >= 15ms of RTT; one pipelined round
        // trip costs ~300us.
        assert!(batched < Duration::from_millis(5), "{batched:?}");
        let snap = s.metrics().unwrap();
        assert_eq!(snap.counter("put_calls"), Some(50));
        assert_eq!(snap.counter("network_bytes"), Some(50 * 9));
    }

    #[test]
    fn payload_size_scales_delay() {
        let p = NetworkProfile {
            rtt: Duration::from_micros(50),
            per_kb: Duration::from_micros(100),
        };
        assert_eq!(p.delay_for(0), Duration::from_micros(50));
        assert_eq!(p.delay_for(1), Duration::from_micros(150));
        assert_eq!(p.delay_for(4096), Duration::from_micros(450));
    }

    #[test]
    fn per_kb_charge_rounds_up_at_the_1024_byte_boundary() {
        let p = NetworkProfile {
            rtt: Duration::from_micros(50),
            per_kb: Duration::from_micros(100),
        };
        // A partial KB is charged as a full KB (ceiling division): 1023
        // and 1024 bytes both cost one per-KB unit; 1025 tips into two.
        assert_eq!(p.delay_for(1023), Duration::from_micros(150));
        assert_eq!(p.delay_for(1024), Duration::from_micros(150));
        assert_eq!(p.delay_for(1025), Duration::from_micros(250));
    }
}
