//! Pluggable partition maps: the [`Router`] trait and its versioned
//! slot-table implementation.
//!
//! A router decides which shard owns a key. The original
//! `fnv1a(key) % N` modulo router is total and deterministic but frozen:
//! changing `N` remaps almost every key, so the topology can never
//! change while a store is live. The slot table decouples the two
//! decisions the modulo router fused together:
//!
//! 1. **key → slot** — `fnv1a(key) % SLOTS`, fixed forever. A key's
//!    slot never changes, whatever the topology does.
//! 2. **slot → shard** — a dense table of [`SLOTS`] entries. Moving a
//!    slot to another shard rewrites one table entry; every other key
//!    on the planet keeps its route.
//!
//! This is the Redis-cluster/Valkey partitioning model scaled to a
//! benchmark harness: resharding becomes "copy the keys of these slots,
//! then flip their table entries", which [`ShardedStore`] implements as
//! an online migration (see `sharded.rs`).
//!
//! The [identity assignment](SlotTable::identity) maps slot `i` to
//! shard `i % shards`, so for any shard count that divides [`SLOTS`]
//! the composite route `(fnv1a(key) % SLOTS) % shards` equals the
//! legacy `fnv1a(key) % shards` *bit for bit* — existing on-disk shard
//! layouts, equivalence proptests, and committed baselines are
//! unaffected. [`SLOTS`] is 2520 = lcm(1..=10) precisely so every
//! practical shard count (1–10, plus 12, 14, 15, …) divides it.
//!
//! [`ShardedStore`]: crate::ShardedStore

use crate::hash::fnv1a;

/// Number of fixed hash slots in a partition map.
///
/// 2520 = lcm(1, 2, …, 10): every shard count up to 10 (and several
/// beyond) divides it, which makes the identity slot table *exactly*
/// the legacy FNV-modulo router for those counts. Fine-grained enough
/// that a migration can move a small fraction of a shard's keyspace.
pub const SLOTS: usize = 2520;

/// The slot a key hashes to. Fixed for all time — topology changes
/// move slots between shards, never keys between slots.
#[inline]
pub fn slot_of_key(key: &[u8]) -> usize {
    (fnv1a(key) % SLOTS as u64) as usize
}

/// A partition map: the pluggable policy deciding which shard owns
/// which slot (and hence which key).
///
/// Implementations must be cheap to query (`route` sits on every
/// operation's hot path) and immutable: topology changes are expressed
/// by *installing a new router* behind the store's epoch pointer, never
/// by mutating one in place. That is what makes a map flip atomic — a
/// reader holds one coherent epoch for the duration of an operation.
pub trait Router: Send + Sync + std::fmt::Debug {
    /// Number of shards this map routes across.
    fn shards(&self) -> usize;

    /// The shard that owns `slot`.
    fn shard_of_slot(&self, slot: usize) -> usize;

    /// Monotonic map version: bumped on every topology change, so two
    /// epochs of the same store are ordered and distinguishable.
    fn version(&self) -> u64;

    /// The shard that owns `key`.
    fn route(&self, key: &[u8]) -> usize {
        self.shard_of_slot(slot_of_key(key))
    }

    /// Content digest of the full assignment (shard count + every
    /// slot's owner). Two routers with equal digests route every key
    /// identically; reports record it so cross-run comparisons can
    /// refuse to diff runs with different topologies.
    fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(SLOTS * 2 + 8);
        bytes.extend_from_slice(&(self.shards() as u64).to_le_bytes());
        for slot in 0..SLOTS {
            bytes.extend_from_slice(&(self.shard_of_slot(slot) as u16).to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// Renders a router digest the way reports record it.
pub fn digest_hex(router: &dyn Router) -> String {
    format!("{:016x}", router.digest())
}

/// The versioned slot table: a dense `SLOTS`-entry map from slot to
/// shard. Immutable; [`SlotTable::reassign`] builds the successor
/// epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotTable {
    shards: usize,
    version: u64,
    table: Vec<u16>,
}

impl SlotTable {
    /// The identity assignment over `shards` shards: slot `i` belongs
    /// to shard `i % shards`, version 1.
    ///
    /// For shard counts dividing [`SLOTS`] this routes every key
    /// exactly like the legacy `fnv1a(key) % shards` modulo router;
    /// for other counts it is still a total, deterministic, balanced
    /// assignment (±1 slot), just not bit-identical to the modulo.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `shards > u16::MAX as usize + 1`;
    /// [`ShardedStore`](crate::ShardedStore) constructors validate
    /// first and surface [`StoreError::Config`](crate::StoreError)
    /// instead.
    pub fn identity(shards: usize) -> SlotTable {
        assert!(shards > 0, "slot table needs at least one shard");
        assert!(shards <= u16::MAX as usize + 1, "shard id must fit u16");
        SlotTable {
            shards,
            version: 1,
            table: (0..SLOTS).map(|slot| (slot % shards) as u16).collect(),
        }
    }

    /// Materializes any router's current assignment as a slot table —
    /// the starting point for building a successor epoch when the live
    /// router is only known as a `dyn Router`.
    pub fn from_router(router: &dyn Router) -> SlotTable {
        SlotTable {
            shards: router.shards(),
            version: router.version(),
            table: (0..SLOTS).map(|s| router.shard_of_slot(s) as u16).collect(),
        }
    }

    /// Builds the successor epoch: `slots` reassigned to shard `to`,
    /// version bumped. `to` may be one past the current shard count
    /// (a freshly added shard); the new table's shard count grows to
    /// cover it.
    pub fn reassign(&self, slots: &[usize], to: usize) -> SlotTable {
        let mut table = self.table.clone();
        for &slot in slots {
            table[slot] = to as u16;
        }
        SlotTable {
            shards: self.shards.max(to + 1),
            version: self.version + 1,
            table,
        }
    }

    /// The slots currently assigned to `shard`, ascending.
    pub fn slots_of(&self, shard: usize) -> Vec<usize> {
        (0..SLOTS)
            .filter(|&slot| self.table[slot] == shard as u16)
            .collect()
    }
}

impl Router for SlotTable {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of_slot(&self, slot: usize) -> usize {
        self.table[slot] as usize
    }

    fn version(&self) -> u64 {
        self.version
    }
}

/// What one completed slot migration did and what it cost. Recorded by
/// [`ShardedStore`](crate::ShardedStore) and surfaced through reports
/// so the elasticity scenarios are measurable, not just runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardEvent {
    /// Op index at which the migration was triggered (0 when the
    /// trigger had no op counter in scope, e.g. an over-the-wire
    /// reshard against a live server).
    pub at_op: u64,
    /// Shard the slots moved from.
    pub from: usize,
    /// Shard the slots moved to.
    pub to: usize,
    /// Slots moved.
    pub slots: usize,
    /// Keys copied during the transfer window.
    pub keys: u64,
    /// Microseconds the exclusive map flip held out writers — the
    /// "pause time" the paper-style elasticity scenario measures.
    pub pause_us: u64,
    /// Total transfer-window length in microseconds (copy + flip).
    pub copy_us: u64,
    /// Router version after the flip.
    pub map_version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard_of;

    #[test]
    fn identity_table_matches_legacy_modulo_for_dividing_counts() {
        for shards in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            assert_eq!(SLOTS % shards, 0, "{shards} must divide SLOTS");
            let table = SlotTable::identity(shards);
            for i in 0..4000u64 {
                let key = i.to_be_bytes();
                assert_eq!(
                    table.route(&key),
                    shard_of(&key, shards),
                    "shards={shards} key={i}"
                );
            }
        }
    }

    #[test]
    fn reassign_moves_exactly_the_named_slots() {
        let base = SlotTable::identity(4);
        let moved: Vec<usize> = base.slots_of(0).into_iter().take(10).collect();
        let next = base.reassign(&moved, 3);
        assert_eq!(next.version(), 2);
        assert_eq!(next.shards(), 4);
        for slot in 0..SLOTS {
            if moved.contains(&slot) {
                assert_eq!(next.shard_of_slot(slot), 3);
            } else {
                assert_eq!(next.shard_of_slot(slot), base.shard_of_slot(slot));
            }
        }
    }

    #[test]
    fn reassign_can_grow_the_shard_count() {
        let base = SlotTable::identity(4);
        let moved: Vec<usize> = base.slots_of(1).into_iter().take(5).collect();
        let next = base.reassign(&moved, 4);
        assert_eq!(next.shards(), 5);
        assert_eq!(next.slots_of(4), moved);
    }

    #[test]
    fn digest_tracks_assignment_not_version() {
        let a = SlotTable::identity(4);
        let b = SlotTable::identity(4);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(digest_hex(&a), digest_hex(&b));
        let moved = a.slots_of(0);
        let c = a.reassign(&moved[..1], 1);
        assert_ne!(a.digest(), c.digest(), "moving a slot changes the digest");
        assert_ne!(a.digest(), SlotTable::identity(5).digest());
        // Round-tripping the slot restores the original assignment and
        // therefore the original digest, even though versions differ.
        let back = c.reassign(&moved[..1], 0);
        assert_eq!(back.digest(), a.digest());
        assert_ne!(back.version(), a.version());
    }

    #[test]
    fn slots_of_partitions_the_slot_space() {
        let table = SlotTable::identity(7);
        let mut seen = vec![false; SLOTS];
        for shard in 0..7 {
            for slot in table.slots_of(shard) {
                assert!(!seen[slot], "slot {slot} owned twice");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every slot has an owner");
    }

    #[test]
    fn slot_of_key_is_stable_and_in_range() {
        for i in 0..1000u64 {
            let key = i.to_be_bytes();
            let slot = slot_of_key(&key);
            assert!(slot < SLOTS);
            assert_eq!(slot, slot_of_key(&key));
        }
    }
}
