//! The durability surface: checkpoint manifests and fsync helpers.
//!
//! Every [`StateStore`](crate::StateStore) describes its durability class
//! via [`Durability`] and can materialize a point-in-time
//! [`CheckpointManifest`] into a directory with
//! [`StateStore::checkpoint`](crate::StateStore::checkpoint), then later
//! rebuild that exact state with
//! [`StateStore::restore`](crate::StateStore::restore). The manifest is a
//! small text file named [`MANIFEST_NAME`] written last (create-temp,
//! rename, fsync file and directory), so a checkpoint directory without a
//! readable manifest is by construction incomplete and restore refuses it.
//!
//! The module also hosts the crash-safety file primitives shared by the
//! backends: [`fsync_dir`] (persist a create/rename of a directory entry —
//! without it a crash can lose the rename itself) and a simple
//! checksummed key-value record codec ([`write_kv_record`] /
//! [`read_kv_records`]) used by the snapshot-only backends. `fsync_dir`
//! counts its calls in a process-global counter ([`dir_fsync_count`])
//! purely as an injection/observation hook for crash tests.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StoreError;
use crate::hash::fnv1a;

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "CHECKPOINT";

/// Manifest format version (bumped on incompatible layout changes).
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// How a store survives process death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Nothing survives a crash; state lives only in process memory.
    Ephemeral,
    /// State survives only via explicit checkpoints (and, for file-backed
    /// stores, whatever page writeback happened before the crash).
    SnapshotOnly,
    /// A write-ahead log bounds the loss window. With `sync == true`
    /// every acknowledged write is fsynced before the ack and the loss
    /// window is zero; otherwise the tail buffered in user space is lost.
    WalBacked {
        /// Whether acknowledged writes are fsynced before returning.
        sync: bool,
    },
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Durability::Ephemeral => write!(f, "ephemeral"),
            Durability::SnapshotOnly => write!(f, "snapshot-only"),
            Durability::WalBacked { sync: true } => write!(f, "wal (sync)"),
            Durability::WalBacked { sync: false } => write!(f, "wal (async)"),
        }
    }
}

/// One file captured by a checkpoint, relative to the checkpoint dir.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// File name relative to the checkpoint directory (may contain `/`
    /// for per-shard sub-checkpoints).
    pub name: String,
    /// Size in bytes at checkpoint time.
    pub bytes: u64,
}

/// The manifest describing one completed checkpoint.
///
/// Written last into the checkpoint directory as [`MANIFEST_NAME`];
/// restore loads and validates it before touching any data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Manifest layout version ([`CHECKPOINT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// `StateStore::name()` of the store that wrote the checkpoint.
    pub store: String,
    /// Captured files, in write order.
    pub files: Vec<CheckpointFile>,
    /// Total bytes across `files`.
    pub total_bytes: u64,
    /// Files already present from a previous checkpoint into the same
    /// directory and reused as-is (incremental checkpointing).
    pub reused_files: u64,
    /// Partition-map digest at checkpoint time (sharded stores only).
    pub partition_digest: Option<String>,
    /// Shard count for a sharded super-checkpoint; 0 for plain stores.
    pub shards: u32,
}

impl CheckpointManifest {
    /// A fresh manifest for `store` with no files yet.
    pub fn new(store: &str) -> Self {
        CheckpointManifest {
            format_version: CHECKPOINT_FORMAT_VERSION,
            store: store.to_string(),
            files: Vec::new(),
            total_bytes: 0,
            reused_files: 0,
            partition_digest: None,
            shards: 0,
        }
    }

    /// Records `name` (`bytes` long) as part of this checkpoint.
    pub fn push_file(&mut self, name: impl Into<String>, bytes: u64) {
        self.files.push(CheckpointFile {
            name: name.into(),
            bytes,
        });
        self.total_bytes += bytes;
    }

    fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("gadget-checkpoint {}\n", self.format_version));
        out.push_str(&format!("store {}\n", self.store));
        out.push_str(&format!("shards {}\n", self.shards));
        out.push_str(&format!(
            "partition_digest {}\n",
            self.partition_digest.as_deref().unwrap_or("-")
        ));
        out.push_str(&format!("reused_files {}\n", self.reused_files));
        for f in &self.files {
            out.push_str(&format!("file {} {}\n", f.bytes, f.name));
        }
        out
    }

    fn decode(text: &str) -> Result<Self, StoreError> {
        let corrupt = |msg: &str| StoreError::Corruption(format!("checkpoint manifest: {msg}"));
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty"))?;
        let version = header
            .strip_prefix("gadget-checkpoint ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| corrupt("bad header"))?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(corrupt(&format!("unsupported format version {version}")));
        }
        let mut manifest = CheckpointManifest::new("");
        for line in lines {
            let (key, rest) = line.split_once(' ').ok_or_else(|| corrupt("bad line"))?;
            match key {
                "store" => manifest.store = rest.to_string(),
                "shards" => {
                    manifest.shards = rest.parse().map_err(|_| corrupt("bad shard count"))?
                }
                "partition_digest" => {
                    manifest.partition_digest = (rest != "-").then(|| rest.to_string())
                }
                "reused_files" => {
                    manifest.reused_files = rest.parse().map_err(|_| corrupt("bad reused count"))?
                }
                "file" => {
                    let (bytes, name) = rest
                        .split_once(' ')
                        .ok_or_else(|| corrupt("bad file line"))?;
                    let bytes = bytes.parse().map_err(|_| corrupt("bad file size"))?;
                    manifest.push_file(name, bytes);
                }
                other => return Err(corrupt(&format!("unknown key {other}"))),
            }
        }
        if manifest.store.is_empty() {
            return Err(corrupt("missing store name"));
        }
        Ok(manifest)
    }

    /// Writes the manifest into `dir` as [`MANIFEST_NAME`], atomically
    /// (temp file, fsync, rename, fsync dir). Call this last: a readable
    /// manifest is the commit point of a checkpoint.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let path = dir.join(MANIFEST_NAME);
        let mut file =
            File::create(&tmp).map_err(|e| StoreError::path_io("open", tmp.clone(), e))?;
        file.write_all(self.encode().as_bytes())
            .map_err(|e| StoreError::path_io("write", tmp.clone(), e))?;
        file.sync_all()
            .map_err(|e| StoreError::path_io("fsync", tmp.clone(), e))?;
        std::fs::rename(&tmp, &path).map_err(|e| StoreError::path_io("rename", path, e))?;
        fsync_dir(dir)?;
        Ok(())
    }

    /// Loads the manifest from `dir`, failing with a diagnosable error
    /// when the directory is not a completed checkpoint.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| StoreError::path_io("open", path.clone(), e))?;
        Self::decode(&text)
    }
}

/// Calls to [`fsync_dir`] since process start (injection/observation hook
/// for crash-safety regression tests).
static DIR_FSYNCS: AtomicU64 = AtomicU64::new(0);

/// Number of directory fsyncs issued so far by this process.
pub fn dir_fsync_count() -> u64 {
    DIR_FSYNCS.load(Ordering::Relaxed)
}

/// Fsyncs a directory so a just-created or just-renamed entry inside it
/// survives a crash. POSIX persists file *data* on `fsync(fd)` but the
/// *name* lives in the directory, which needs its own fsync.
pub fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    let handle = File::open(dir).map_err(|e| StoreError::path_io("open", dir.to_path_buf(), e))?;
    handle
        .sync_all()
        .map_err(|e| StoreError::path_io("fsync", dir.to_path_buf(), e))?;
    DIR_FSYNCS.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Hard-links `src` as `dst`, falling back to a full copy when linking
/// fails (cross-device, or an unsupported filesystem). The copy path
/// fsyncs the new file; the link path shares the already-synced inode.
/// Only correct for *immutable* sources (SSTables, finished snapshots):
/// a hard link aliases live mutations.
pub fn link_or_copy(src: &Path, dst: &Path) -> io::Result<()> {
    if std::fs::hard_link(src, dst).is_ok() {
        return Ok(());
    }
    std::fs::copy(src, dst)?;
    File::open(dst)?.sync_all()
}

/// Appends one checksummed key-value record:
/// `[klen u32][vlen u32][fnv1a(key ∥ value) u64] key value`.
pub fn write_kv_record(w: &mut impl Write, key: &[u8], value: &[u8]) -> io::Result<()> {
    let mut body = Vec::with_capacity(key.len() + value.len());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    w.write_all(&(key.len() as u32).to_le_bytes())?;
    w.write_all(&(value.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a(&body).to_le_bytes())?;
    w.write_all(&body)?;
    Ok(())
}

/// A decoded snapshot record list: owned key/value pairs in file order.
pub type KvRecords = Vec<(Vec<u8>, Vec<u8>)>;

/// Reads every record written by [`write_kv_record`] from `path`.
///
/// Unlike a WAL, a snapshot file is written in one piece and committed by
/// the manifest, so *any* framing or checksum failure is corruption, not
/// a torn tail.
pub fn read_kv_records(path: &Path) -> Result<KvRecords, StoreError> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| StoreError::path_io("open", path.to_path_buf(), e))?;
    let corrupt = || StoreError::Corruption(format!("truncated snapshot record in {path:?}"));
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 16 > data.len() {
            return Err(corrupt());
        }
        let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().unwrap());
        let start = pos + 16;
        let end = start + klen + vlen;
        if end > data.len() {
            return Err(corrupt());
        }
        if fnv1a(&data[start..end]) != sum {
            return Err(StoreError::Corruption(format!(
                "snapshot record checksum mismatch in {path:?}"
            )));
        }
        out.push((
            data[start..start + klen].to_vec(),
            data[start + klen..end].to_vec(),
        ));
        pos = end;
    }
    Ok(out)
}

/// Writes `records` as a checksummed snapshot file at `path` (truncating),
/// fsyncing the file and its parent directory. Returns bytes written.
pub fn write_snapshot_file<'a>(
    path: &Path,
    records: impl Iterator<Item = (&'a [u8], &'a [u8])>,
) -> Result<u64, StoreError> {
    let mut file =
        File::create(path).map_err(|e| StoreError::path_io("open", path.to_path_buf(), e))?;
    let mut buf = io::BufWriter::new(&mut file);
    for (k, v) in records {
        write_kv_record(&mut buf, k, v)
            .map_err(|e| StoreError::path_io("write", path.to_path_buf(), e))?;
    }
    buf.flush()
        .map_err(|e| StoreError::path_io("write", path.to_path_buf(), e))?;
    drop(buf);
    file.sync_all()
        .map_err(|e| StoreError::path_io("fsync", path.to_path_buf(), e))?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| StoreError::path_io("open", path.to_path_buf(), e))
}

/// The path of shard `index`'s sub-checkpoint inside a sharded
/// super-checkpoint directory.
pub fn shard_checkpoint_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-dur-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = tmpdir("manifest");
        let mut m = CheckpointManifest::new("lsm");
        m.push_file("L0_1.sst", 4096);
        m.push_file("wal_0.log", 128);
        m.reused_files = 1;
        m.partition_digest = Some("abc123".to_string());
        m.shards = 4;
        m.save(&dir).unwrap();
        let loaded = CheckpointManifest::load(&dir).unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.total_bytes, 4096 + 128);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_path_error() {
        let dir = tmpdir("missing");
        let err = CheckpointManifest::load(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("open"), "{msg}");
        assert!(msg.contains("CHECKPOINT"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        std::fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
        assert!(matches!(
            CheckpointManifest::load(&dir),
            Err(StoreError::Corruption(_))
        ));
        // Future format versions are rejected rather than misread.
        std::fs::write(dir.join(MANIFEST_NAME), "gadget-checkpoint 99\nstore x\n").unwrap();
        assert!(matches!(
            CheckpointManifest::load(&dir),
            Err(StoreError::Corruption(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kv_records_roundtrip_and_detect_corruption() {
        let dir = tmpdir("records");
        let path = dir.join("snap");
        let records: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"longer-key".to_vec(), vec![0xAB; 300]),
            (b"empty-value".to_vec(), Vec::new()),
        ];
        write_snapshot_file(
            &path,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        assert_eq!(read_kv_records(&path).unwrap(), records);

        // Flip one payload byte: checksum failure, not silent data loss.
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_kv_records(&path),
            Err(StoreError::Corruption(_))
        ));

        // Truncate mid-record: also corruption (snapshots have no tail).
        std::fs::write(&path, &data[..n - 3]).unwrap();
        assert!(matches!(
            read_kv_records(&path),
            Err(StoreError::Corruption(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_dir_bumps_the_hook_counter() {
        let dir = tmpdir("fsync");
        let before = dir_fsync_count();
        fsync_dir(&dir).unwrap();
        assert!(dir_fsync_count() > before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_display() {
        assert_eq!(Durability::Ephemeral.to_string(), "ephemeral");
        assert_eq!(Durability::SnapshotOnly.to_string(), "snapshot-only");
        assert_eq!(
            Durability::WalBacked { sync: true }.to_string(),
            "wal (sync)"
        );
        assert_eq!(
            Durability::WalBacked { sync: false }.to_string(),
            "wal (async)"
        );
    }
}
