//! The store abstraction layer: the [`StateStore`] trait and adapters.
//!
//! Gadget's performance evaluator talks to every KV store through one
//! interface with the four operations of the paper's state-access model
//! (§2.3, §5.5): `get`, `put`, `merge`, and `delete`. Stores that do not
//! support lazy merges (the paper's FASTER and BerkeleyDB) advertise
//! [`StateStore::supports_merge`] `== false` and receive a read-modify-write
//! translation instead, exactly as the paper's connector layer does.
//!
//! The crate also provides:
//!
//! * [`MemStore`] — a trivial in-memory hash-map store used as a reference
//!   implementation in tests and as an upper-bound baseline.
//! * [`InstrumentedStore`] — a wrapper that records every access into a
//!   [`Trace`](gadget_types::Trace); this is the Rust analogue of the
//!   paper's instrumented Flink state backend (§3.1) and is how the
//!   reference stream processor produces "real" traces.
//! * [`ObservedStore`] — a lightweight wrapper that counts operations and
//!   samples latencies into a `gadget-obs` registry, cheap enough to keep
//!   enabled during benchmark runs (unlike the full trace recorder).
//! * [`ShardedStore`] — hash-partitions the keyspace across N inner
//!   stores so independent shard locks, WALs, and background workers can
//!   use multiple cores; batches split per shard and apply in parallel.
//!   Routing goes through a pluggable [`Router`] (by default the
//!   versioned [`SlotTable`]), and the topology can change *live*:
//!   [`ShardedStore::split_shard`] / [`ShardedStore::migrate_slots`]
//!   move hash slots between shards under traffic with a double-apply
//!   transfer window and an atomic map flip.
//!
//! Every store exposes [`StateStore::metrics`], returning a
//! [`MetricsSnapshot`](gadget_obs::MetricsSnapshot) of its internals
//! (compaction traffic, cache hit rates, fsync latencies, …) for the
//! `--metrics` time-series emitter.

pub mod durability;
pub mod error;
pub mod hash;
pub mod instrument;
pub mod mem;
pub mod observed;
pub mod remote;
pub mod router;
pub mod sharded;
pub mod store;

pub use durability::{
    dir_fsync_count, fsync_dir, link_or_copy, shard_checkpoint_dir, CheckpointFile,
    CheckpointManifest, Durability, MANIFEST_NAME,
};
pub use error::StoreError;
pub use hash::fnv1a;
pub use instrument::InstrumentedStore;
pub use mem::MemStore;
pub use observed::{ObservedStore, OpTimers};
pub use remote::{NetworkProfile, RemoteStore};
pub use router::{digest_hex, slot_of_key, ReshardEvent, Router, SlotTable, SLOTS};
pub use sharded::{shard_of, ShardedStore};
pub use store::{apply_ops_serially, BatchResult, StateStore, StoreCounters};
