//! Property-based tests: the log-bucketed histogram vs an exact oracle.

use proptest::prelude::*;

use gadget_replay::LatencyHistogram;

/// Exact nearest-rank percentile oracle.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// Reported percentiles are within the histogram's documented ~4%
    /// relative error of the exact values (and never above them by more
    /// than one bucket).
    #[test]
    fn percentiles_track_exact_values(
        mut values in proptest::collection::vec(0u64..10_000_000_000, 1..500),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&values, p);
            let approx = h.percentile(p);
            prop_assert!(approx <= exact, "p{p}: approx {approx} > exact {exact}");
            let error = (exact - approx) as f64 / exact.max(1) as f64;
            prop_assert!(error <= 0.04, "p{p}: error {error} (approx {approx}, exact {exact})");
        }
        prop_assert_eq!(h.percentile(100.0), *values.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        let exact_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max(), hu.max());
        for p in [50.0, 99.0, 100.0] {
            prop_assert_eq!(ha.percentile(p), hu.percentile(p));
        }
    }
}
