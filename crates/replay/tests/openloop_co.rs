//! Coordinated-omission coverage: the open-loop pacer must charge a
//! stalling store the queueing delay that send-time measurement hides,
//! the pacer must hold its absolute schedule to <1%, and the Poisson
//! schedule must converge on its nominal rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use proptest::prelude::*;

use gadget_kv::{MemStore, StateStore, StoreError};
use gadget_replay::{ArrivalMode, Pacer, ReplayOptions, TraceReplayer};
use gadget_types::{StateAccess, StateKey, Trace};

fn put_trace(ops: usize, keys: u64) -> Trace {
    let mut trace = Trace::new();
    for i in 0..ops {
        trace.push(StateAccess::put(
            StateKey::plain(i as u64 % keys),
            8,
            i as u64,
        ));
    }
    trace
}

/// Stalls for `stall` every `every`-th op — a synthetic compaction
/// pause / GC hiccup. Fast otherwise.
struct StallStore {
    inner: MemStore,
    every: u64,
    stall: Duration,
    count: AtomicU64,
}

impl StallStore {
    fn new(every: u64, stall: Duration) -> Self {
        StallStore {
            inner: MemStore::new(),
            every,
            stall,
            count: AtomicU64::new(0),
        }
    }

    fn tick(&self) {
        let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.every) {
            std::thread::sleep(self.stall);
        }
    }
}

impl StateStore for StallStore {
    fn name(&self) -> &'static str {
        "stall"
    }
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.tick();
        self.inner.get(key)
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.tick();
        self.inner.put(key, value)
    }
    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.tick();
        self.inner.merge(key, operand)
    }
    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.tick();
        self.inner.delete(key)
    }
}

/// The acceptance test for the open-loop observatory: a store that
/// stalls 100ms every 150 ops, replayed at 4k ops/s. Send-time
/// latency (the `service_hist`, what the closed-loop harness used to
/// report) sees only 4 slow ops out of 600 — under 1%, so its p99
/// stays microseconds. Intended-time latency sees every op that
/// *should* have run during or after a stall still waiting on its
/// schedule slot, so its p99 carries the stall. The gap must be at
/// least 10×.
#[test]
fn intended_time_p99_exposes_stalls_send_time_hides() {
    let trace = put_trace(600, 50);
    let store = StallStore::new(150, Duration::from_millis(100));
    let replayer = TraceReplayer::new(ReplayOptions {
        service_rate: Some(4_000.0),
        arrival: ArrivalMode::Constant,
        ..ReplayOptions::default()
    });
    let report = replayer.replay(&trace, &store, "stall").unwrap();
    assert_eq!(report.operations, 600);
    assert_eq!(report.arrival.as_deref(), Some("constant"));

    let intended_p99 = report.latency.p99_ns;
    let send_p99 = report.service_hist.percentile(99.0);
    assert!(
        report.service_hist.count() == 600 && report.lag_hist.count() == 600,
        "open-loop must record lag and service for every op"
    );
    assert!(
        intended_p99 >= 10 * send_p99.max(1),
        "intended p99 {intended_p99}ns must be ≥10x send-time p99 {send_p99}ns"
    );
    // The queueing penalty is real stall time: at least one full stall.
    assert!(
        intended_p99 >= 100_000_000,
        "intended p99 {intended_p99}ns lost the 100ms stall"
    );

    // Cross-check against an actual closed-loop run of the same rig:
    // its overall p99 (send-time by construction) also misses the
    // stall — that is the coordinated-omission trap in one line.
    let closed_store = StallStore::new(150, Duration::from_millis(100));
    let closed = TraceReplayer::new(ReplayOptions {
        service_rate: Some(4_000.0),
        ..ReplayOptions::default()
    })
    .replay(&trace, &closed_store, "stall")
    .unwrap();
    assert!(
        intended_p99 >= 10 * closed.latency.p99_ns.max(1),
        "closed-loop p99 {}ns should hide what open-loop p99 {intended_p99}ns exposes",
        closed.latency.p99_ns
    );
    assert_eq!(closed.lag_hist.count(), 0, "closed loop records no lag");
}

/// The re-anchored absolute schedule must hold the offered rate to
/// within 1% — the old pacing accumulated per-op truncation error and
/// drifted on exactly this kind of run.
#[test]
fn paced_schedule_error_under_one_percent() {
    let trace = put_trace(3_000, 64);
    for arrival in [ArrivalMode::Closed, ArrivalMode::Constant] {
        let store = MemStore::new();
        let target = 10_000.0;
        let replayer = TraceReplayer::new(ReplayOptions {
            service_rate: Some(target),
            arrival,
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "pace").unwrap();
        let error = (report.throughput - target).abs() / target;
        assert!(
            error < 0.01,
            "{arrival:?}: achieved {:.1} ops/s vs {target} ({:.2}% schedule error)",
            report.throughput,
            error * 100.0
        );
    }
}

/// Open-loop latency is lag + service, so the overall histogram must
/// dominate the service histogram everywhere it matters.
#[test]
fn intended_latency_dominates_service_latency() {
    let trace = put_trace(800, 64);
    let store = MemStore::new();
    let replayer = TraceReplayer::new(ReplayOptions {
        service_rate: Some(20_000.0),
        arrival: ArrivalMode::Poisson,
        arrival_seed: 7,
        ..ReplayOptions::default()
    });
    let report = replayer.replay(&trace, &store, "t").unwrap();
    assert_eq!(report.lag_hist.count(), 800);
    assert_eq!(report.service_hist.count(), 800);
    for p in [50.0, 99.0, 99.9] {
        let intended = report.latency_hist.percentile(p);
        let service = report.service_hist.percentile(p);
        // Log-bucketing has ~3% relative error; allow one bucket of slack.
        assert!(
            intended as f64 >= service as f64 * 0.94,
            "p{p}: intended {intended} < service {service}"
        );
    }
    assert_eq!(report.offered_rate, Some(20_000.0));
    assert_eq!(report.arrival.as_deref(), Some("poisson"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Poisson schedule's empirical mean inter-arrival must
    /// converge to 1/rate regardless of seed or rate — 4096 draws put
    /// the standard error of the mean at ~1.6%, so 10% is a >6σ bound.
    #[test]
    fn poisson_mean_interarrival_converges(
        seed in 1u64..u64::MAX,
        rate in 1_000.0f64..1_000_000.0,
    ) {
        let anchor = Instant::now();
        let mut pacer = Pacer::new(ArrivalMode::Poisson, Some(rate), seed, anchor);
        let n = 4_096u64;
        let mut last = Duration::ZERO;
        for _ in 0..n {
            last = pacer
                .next_deadline()
                .expect("paced pacer yields deadlines")
                .duration_since(anchor);
        }
        // n draws produced n-1 gaps after the first arrival at offset 0.
        let mean_gap_ns = last.as_nanos() as f64 / (n - 1) as f64;
        let expected = 1e9 / rate;
        let rel = (mean_gap_ns - expected).abs() / expected;
        prop_assert!(
            rel < 0.1,
            "seed {seed} rate {rate}: mean gap {mean_gap_ns:.0}ns vs expected {expected:.0}ns"
        );
    }
}
