//! Batch/serial equivalence property: for any op sequence and any batch
//! size, applying the ops through `apply_batch` must produce the same
//! per-op results, byte-identical final store state, and an identical
//! `InstrumentedStore` access trace as op-by-op application — on all four
//! store substrates. Batching is a transport optimization, never a
//! semantic one.

use bytes::Bytes;
use proptest::prelude::*;

use gadget_btree::{BTreeConfig, BTreeStore};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{apply_ops_serially, InstrumentedStore, MemStore, StateStore};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

/// Batch sizes under test: unbatched, prime-sized (never divides the op
/// count evenly), a realistic micro-batch, and larger than any sequence.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, 1000];

/// Key universe: single-byte keys 0..16, small enough that sequences
/// revisit keys (overwrites, merge stacking, delete-then-get).
const KEYS: u8 = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gadget-batch-eq-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{name}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// are a deterministic function of the op index.
fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..KEYS, 1u8..32), 1..300).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key];
                let payload = vec![(i * 31 + 7) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// Runs `ops` serially on one fresh store and in `batch`-sized chunks on
/// another, asserting identical results, traces, and final state.
fn assert_equivalent<S: StateStore>(mk: impl Fn() -> S, ops: &[Op], batch: usize, label: &str) {
    let serial = InstrumentedStore::new(mk());
    let expect = apply_ops_serially(&serial, ops).unwrap();

    let batched = InstrumentedStore::new(mk());
    let mut got = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(batch) {
        got.extend(batched.apply_batch(chunk).unwrap());
    }

    assert_eq!(got, expect, "{label} batch={batch}: per-op results differ");
    assert_eq!(
        batched.take_trace().accesses,
        serial.take_trace().accesses,
        "{label} batch={batch}: instrumented traces differ"
    );
    for key in 0..KEYS {
        let s: Option<Bytes> = serial.inner().get(&[key]).unwrap();
        let b: Option<Bytes> = batched.inner().get(&[key]).unwrap();
        assert_eq!(
            b, s,
            "{label} batch={batch}: final state differs at key {key}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batched_application_is_invisible_on_every_store(ops in op_seq()) {
        for batch in BATCH_SIZES {
            assert_equivalent(MemStore::new, &ops, batch, "mem");
            assert_equivalent(
                || HashLogStore::new(HashLogConfig::small()),
                &ops,
                batch,
                "hashlog",
            );
            assert_equivalent(
                || BTreeStore::open(tmp("btree.db"), BTreeConfig::small()).unwrap(),
                &ops,
                batch,
                "btree",
            );
            // Sync WAL + tiny memtable: group commit and mid-batch
            // memtable rotation both fire inside the equivalence check.
            assert_equivalent(
                || {
                    let dir = tmp("lsm");
                    std::fs::create_dir_all(&dir).unwrap();
                    LsmStore::open(
                        &dir,
                        LsmConfig {
                            wal_sync: true,
                            memtable_bytes: 2 << 10,
                            ..LsmConfig::small()
                        },
                    )
                    .unwrap()
                },
                &ops,
                batch,
                "lsm",
            );
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-batch-eq-{}", std::process::id())),
        );
    }
}
