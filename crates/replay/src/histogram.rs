//! Log-bucketed latency histogram.
//!
//! The implementation lives in `gadget-obs` ([`gadget_obs::LogHistogram`])
//! so the stores, driver, and replayer all share one bucket layout and
//! snapshots from any layer merge cleanly. This alias keeps the
//! replay-facing name stable: values are bucketed by exponent and 5
//! mantissa bits, giving ~3% relative error with a fixed,
//! allocation-free footprint — the usual HDR-histogram trade-off.

/// A histogram of `u64` values (nanoseconds by convention).
pub type LatencyHistogram = gadget_obs::LogHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_facing_api_is_intact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.count(), 64);
        assert!(h.mean() > 0.0);
        let mut other = LatencyHistogram::new();
        other.record(1_000_000);
        h.merge(&other);
        assert_eq!(h.max(), 1_000_000);
    }
}
