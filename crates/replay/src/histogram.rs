//! Log-bucketed latency histogram.
//!
//! Values are bucketed by exponent and 5 mantissa bits, giving ~3%
//! relative error with a fixed, allocation-free footprint — the usual
//! HDR-histogram trade-off, reimplemented here to keep the dependency
//! surface minimal.

use serde::{Deserialize, Serialize};

const MANTISSA_BITS: u32 = 5;
const BUCKETS: usize = 64 << MANTISSA_BITS;

/// A histogram of `u64` values (nanoseconds by convention).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < (1 << (MANTISSA_BITS + 1)) {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let mantissa = (value >> (exp - MANTISSA_BITS)) & ((1 << MANTISSA_BITS) - 1);
        (((exp - MANTISSA_BITS) as usize) << MANTISSA_BITS | mantissa as usize)
            + (1 << MANTISSA_BITS)
    }

    fn bucket_floor(bucket: usize) -> u64 {
        if bucket < (1 << (MANTISSA_BITS + 1)) {
            return bucket as u64;
        }
        let b = bucket - (1 << MANTISSA_BITS);
        let exp = (b >> MANTISSA_BITS) as u32 + MANTISSA_BITS;
        let mantissa = (b & ((1 << MANTISSA_BITS) - 1)) as u64;
        (1u64 << exp) | (mantissa << (exp - MANTISSA_BITS))
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value).min(BUCKETS - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` in `[0, 100]` (bucket lower bound; exact
    /// max for `p = 100`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(b);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for exp in 6..40u32 {
            let v = (1u64 << exp) + (1 << (exp - 2));
            h.record(v);
            let lo = LatencyHistogram::bucket_floor(LatencyHistogram::bucket_of(v));
            assert!(lo <= v, "floor above value");
            assert!(
                (v - lo) as f64 / v as f64 <= 0.04,
                "error too large at {v}: floor {lo}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 10_000_000);
        }
        let ps = [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        for w in ps.windows(2) {
            assert!(h.percentile(w[0]) <= h.percentile(w[1]));
        }
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }
}
