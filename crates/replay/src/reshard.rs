//! Mid-replay reshard triggers for embedded (in-process) runs.
//!
//! The network driver fires its reshard over a control connection; an
//! embedded replay has no wire to send a control frame down, so the
//! trigger rides the data path instead: [`ReshardingStore`] wraps the
//! [`ShardedStore`] being replayed, counts every operation that passes
//! through, and — the moment the count crosses the planned op index —
//! fires the migration on a *background thread* while the replay keeps
//! issuing ops through the open transfer window. That is the point:
//! the replay's latency histogram records the migration's interference
//! from the foreground's perspective, exactly like the paper-style
//! elasticity measurement.
//!
//! The trigger fires at most once. [`ReshardingStore::finish`] joins
//! the migration thread and hands back what it did, so the caller can
//! stamp the [`ReshardEvent`] into the run report.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use gadget_kv::{BatchResult, ReshardEvent, ShardedStore, StateStore, StoreError};
use gadget_obs::MetricsSnapshot;
use gadget_types::Op;

/// A planned mid-run reshard: at absolute op index `at_op`, move slots
/// from shard `from` to shard `to` (the store's current shard count to
/// split a brand-new shard into existence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardPlan {
    /// Fire after this many ops have passed through the store.
    pub at_op: u64,
    /// Source shard.
    pub from: usize,
    /// Target shard.
    pub to: usize,
}

impl ReshardPlan {
    /// Parses the CLI form `frac:from:to` (e.g. `0.5:0:4`): fire at
    /// `frac` of `total_ops`, moving slots from shard `from` to shard
    /// `to`.
    pub fn parse(spec: &str, total_ops: u64) -> Result<ReshardPlan, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [frac, from, to] = parts.as_slice() else {
            return Err(format!(
                "reshard spec '{spec}' is not of the form <op-frac>:<from>:<to>"
            ));
        };
        let frac: f64 = frac
            .parse()
            .map_err(|_| format!("reshard op fraction '{frac}' is not a number"))?;
        if !(0.0..=1.0).contains(&frac) {
            return Err(format!("reshard op fraction {frac} outside 0.0..=1.0"));
        }
        let from: usize = from
            .parse()
            .map_err(|_| format!("reshard source shard '{from}' is not an index"))?;
        let to: usize = to
            .parse()
            .map_err(|_| format!("reshard target shard '{to}' is not an index"))?;
        Ok(ReshardPlan {
            at_op: (frac * total_ops as f64) as u64,
            from,
            to,
        })
    }
}

/// A [`StateStore`] that counts ops through an inner [`ShardedStore`]
/// and fires one planned live reshard when the count crosses the plan.
pub struct ReshardingStore {
    inner: Arc<ShardedStore>,
    plan: ReshardPlan,
    counted: AtomicU64,
    fired: AtomicBool,
    migration: Mutex<Option<JoinHandle<Result<ReshardEvent, StoreError>>>>,
}

impl ReshardingStore {
    /// Wraps `inner`, arming the plan.
    pub fn new(inner: Arc<ShardedStore>, plan: ReshardPlan) -> ReshardingStore {
        ReshardingStore {
            inner,
            plan,
            counted: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            migration: Mutex::new(None),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<ShardedStore> {
        &self.inner
    }

    /// Counts `n` ops and fires the migration if the plan's op index
    /// was just crossed. The fire itself is a thread spawn; the data
    /// path never waits for the migration.
    fn tick(&self, n: u64) {
        let after = self.counted.fetch_add(n, Ordering::Relaxed) + n;
        if after < self.plan.at_op || self.fired.swap(true, Ordering::Relaxed) {
            return;
        }
        let store = Arc::clone(&self.inner);
        let plan = self.plan;
        let handle = std::thread::Builder::new()
            .name("gadget-reshard".to_string())
            .spawn(move || store.reshard(plan.from, plan.to, plan.at_op))
            .expect("spawn reshard thread");
        *self.migration.lock().unwrap() = Some(handle);
    }

    /// Joins the migration (blocking until it completes if it is still
    /// copying) and returns what it did — `None` if the replay ended
    /// before the op count ever reached the plan.
    pub fn finish(&self) -> Option<Result<ReshardEvent, StoreError>> {
        let handle = self.migration.lock().unwrap().take()?;
        Some(handle.join().unwrap_or_else(|_| {
            Err(StoreError::Corruption(
                "reshard thread panicked".to_string(),
            ))
        }))
    }
}

impl StateStore for ReshardingStore {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.tick(1);
        self.inner.get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.tick(1);
        self.inner.put(key, value)
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.tick(1);
        self.inner.merge(key, operand)
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.tick(1);
        self.inner.delete(key)
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        self.tick(1);
        self.inner.scan(lo, hi)
    }

    fn supports_scan(&self) -> bool {
        self.inner.supports_scan()
    }

    fn supports_merge(&self) -> bool {
        self.inner.supports_merge()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.inner.internal_counters()
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.metrics()
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        self.tick(batch.len() as u64);
        self.inner.apply_batch(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_kv::MemStore;

    fn sharded(n: usize) -> Arc<ShardedStore> {
        Arc::new(
            ShardedStore::from_factory(n, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
                .unwrap(),
        )
    }

    #[test]
    fn plan_parses_the_cli_form() {
        let plan = ReshardPlan::parse("0.5:0:4", 1_000).unwrap();
        assert_eq!(
            plan,
            ReshardPlan {
                at_op: 500,
                from: 0,
                to: 4
            }
        );
        assert!(ReshardPlan::parse("0.5:0", 10).is_err());
        assert!(ReshardPlan::parse("1.5:0:1", 10).is_err());
        assert!(ReshardPlan::parse("x:0:1", 10).is_err());
        assert!(ReshardPlan::parse("0.1:a:1", 10).is_err());
    }

    #[test]
    fn trigger_fires_once_at_the_planned_op() {
        let inner = sharded(2);
        let store = ReshardingStore::new(
            inner.clone(),
            ReshardPlan {
                at_op: 100,
                from: 0,
                to: 2,
            },
        );
        for i in 0..400u64 {
            store.put(&i.to_be_bytes(), b"v").unwrap();
        }
        let event = store.finish().expect("fired").expect("migration ok");
        assert_eq!(event.at_op, 100);
        assert_eq!(event.to, 2);
        assert_eq!(inner.shard_count(), 3, "split added a shard");
        assert!(store.finish().is_none(), "fires at most once");
        // Nothing lost.
        for i in 0..400u64 {
            assert!(store.get(&i.to_be_bytes()).unwrap().is_some(), "key {i}");
        }
    }

    #[test]
    fn unreached_plan_never_fires() {
        let store = ReshardingStore::new(
            sharded(2),
            ReshardPlan {
                at_op: 1_000,
                from: 0,
                to: 1,
            },
        );
        for i in 0..10u64 {
            store.put(&i.to_be_bytes(), b"v").unwrap();
        }
        assert!(store.finish().is_none());
    }
}
