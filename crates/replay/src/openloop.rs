//! Open-loop arrival schedules and coordinated-omission-safe pacing.
//!
//! Closed-loop pacing measures each op from its *send* time, which
//! silently forgives a stalling store: while the store is stuck, the
//! replayer simply stops sending, and the ops that should have been
//! issued during the stall never record the wait they would have
//! suffered — the classic *coordinated omission* trap. An open-loop
//! run instead fixes every op's **intended arrival time** up front
//! (a constant-rate or Poisson schedule, seeded and deterministic)
//! and anchors its latency there: an op that arrives mid-stall accrues
//! the full queueing delay from its intended arrival to its
//! completion, whether or not the replayer could physically send it.
//!
//! The [`Pacer`] owns the schedule for one replay loop. Deadlines are
//! computed as *absolute offsets from the schedule anchor* in f64
//! nanoseconds, so per-op rounding never accumulates — at 1M ops the
//! schedule is exactly where `ops / rate` says it should be, unlike
//! the old `anchor + gap * n` form whose truncated `gap` drifted by
//! up to one nanosecond per op (a full second per 10⁹ ops) and whose
//! `n as u32` cast wrapped on long runs.

use std::time::{Duration, Instant};

/// How operations arrive at the store during a paced replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalMode {
    /// Closed-loop: the next op is released when the schedule slot
    /// arrives *and* the previous op has finished; latency is measured
    /// from send time. This is the pre-open-loop behaviour and the
    /// default.
    #[default]
    Closed,
    /// Open-loop, constant inter-arrival gap (`1/rate` seconds);
    /// latency is measured from the intended arrival time.
    Constant,
    /// Open-loop, Poisson process: exponential inter-arrival times
    /// with mean `1/rate`, drawn from a seeded deterministic stream;
    /// latency is measured from the intended arrival time.
    Poisson,
}

impl ArrivalMode {
    /// Canonical lowercase name (CLI flag value, report label).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalMode::Closed => "closed",
            ArrivalMode::Constant => "constant",
            ArrivalMode::Poisson => "poisson",
        }
    }

    /// True for the open-loop modes (latency anchored to intended
    /// arrival, not send).
    pub fn is_open(self) -> bool {
        !matches!(self, ArrivalMode::Closed)
    }
}

impl std::str::FromStr for ArrivalMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "closed" => Ok(ArrivalMode::Closed),
            "constant" => Ok(ArrivalMode::Constant),
            "poisson" => Ok(ArrivalMode::Poisson),
            other => Err(format!(
                "unknown arrival mode {other} (closed, constant, poisson)"
            )),
        }
    }
}

impl std::fmt::Display for ArrivalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// splitmix64 step — the standard 64-bit mixer. Local copy so the
/// schedule stream needs no RNG dependency and stays bit-identical
/// across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of a splitmix64 step.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The intended-arrival-offset stream for one replay loop, in
/// nanoseconds from the schedule anchor.
#[derive(Debug, Clone)]
enum Schedule {
    /// Offset of op `i` is exactly `i * 10⁹ / rate`, computed in f64
    /// from the index each time (no accumulated rounding).
    Constant { gap_ns: f64, issued: u64 },
    /// Offsets are a running sum of exponential inter-arrival draws
    /// with mean `10⁹ / rate`; the sum is kept in f64 so the stream is
    /// reproducible for a given seed.
    Poisson {
        mean_gap_ns: f64,
        state: u64,
        acc_ns: f64,
    },
}

impl Schedule {
    fn next_offset_ns(&mut self) -> f64 {
        match self {
            Schedule::Constant { gap_ns, issued } => {
                let offset = *gap_ns * *issued as f64;
                *issued += 1;
                offset
            }
            Schedule::Poisson {
                mean_gap_ns,
                state,
                acc_ns,
            } => {
                let offset = *acc_ns;
                // Inverse-CDF exponential draw; 1 - u is in (0, 1], so
                // ln never sees zero.
                let u = unit_f64(state);
                *acc_ns += -(1.0 - u).ln() * *mean_gap_ns;
                offset
            }
        }
    }
}

/// Paces one replay loop against an absolute arrival schedule.
///
/// Construct one per loop (or per worker, with the rate split and the
/// seed decorrelated) and ask it for each op's deadline. A `Pacer`
/// outlives segment boundaries: `gadget-server`'s drive replays a
/// connection's slice segment by segment through one persistent pacer,
/// so the schedule never re-anchors mid-connection.
#[derive(Debug, Clone)]
pub struct Pacer {
    anchor: Instant,
    schedule: Option<Schedule>,
    open_loop: bool,
}

impl Pacer {
    /// Builds a pacer. `rate == None` disables pacing (full speed);
    /// `mode` decides the schedule shape and whether measurement is
    /// anchored to intended arrivals. `seed` only matters for
    /// [`ArrivalMode::Poisson`].
    pub fn new(mode: ArrivalMode, rate: Option<f64>, seed: u64, anchor: Instant) -> Pacer {
        let schedule = rate.filter(|r| *r > 0.0).map(|rate| match mode {
            ArrivalMode::Closed | ArrivalMode::Constant => Schedule::Constant {
                gap_ns: 1e9 / rate,
                issued: 0,
            },
            ArrivalMode::Poisson => Schedule::Poisson {
                mean_gap_ns: 1e9 / rate,
                state: seed,
                acc_ns: 0.0,
            },
        });
        Pacer {
            anchor,
            schedule,
            open_loop: mode.is_open() && schedule_is_some(rate),
        }
    }

    /// The next op's intended arrival instant, or `None` when unpaced.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        let offset = self.schedule.as_mut()?.next_offset_ns();
        Some(self.anchor + Duration::from_nanos(offset as u64))
    }

    /// Whether latency should be anchored to intended arrival times.
    pub fn open_loop(&self) -> bool {
        self.open_loop
    }
}

/// `rate.filter(|r| *r > 0.0).is_some()` without re-borrowing `rate`
/// after it moved into the schedule construction above.
fn schedule_is_some(rate: Option<f64>) -> bool {
    matches!(rate, Some(r) if r > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_mode_parses_and_prints() {
        for (s, mode) in [
            ("closed", ArrivalMode::Closed),
            ("constant", ArrivalMode::Constant),
            ("poisson", ArrivalMode::Poisson),
        ] {
            assert_eq!(s.parse::<ArrivalMode>().unwrap(), mode);
            assert_eq!(mode.name(), s);
            assert_eq!(mode.to_string(), s);
        }
        assert!("uniform".parse::<ArrivalMode>().is_err());
        assert!(!ArrivalMode::Closed.is_open());
        assert!(ArrivalMode::Constant.is_open());
        assert!(ArrivalMode::Poisson.is_open());
    }

    #[test]
    fn constant_schedule_has_no_cumulative_drift() {
        // A rate whose gap is not a whole number of nanoseconds: the
        // old truncated-Duration pacing drifted by (gap - floor(gap))
        // per op; the f64 schedule must stay exact.
        let mut s = Schedule::Constant {
            gap_ns: 1e9 / 3_000.0, // 333333.33… ns
            issued: 0,
        };
        let mut last = -1.0;
        for i in 0..1_000_000u64 {
            let offset = s.next_offset_ns();
            assert!(offset > last);
            last = offset;
            if i == 999_999 {
                let exact = 999_999.0 * 1e9 / 3_000.0;
                let err = (offset - exact).abs() / exact;
                assert!(err < 1e-12, "drifted: {offset} vs {exact}");
            }
        }
    }

    #[test]
    fn poisson_schedule_is_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut s = Schedule::Poisson {
                mean_gap_ns: 1e6,
                state: seed,
                acc_ns: 0.0,
            };
            (0..64).map(|_| s.next_offset_ns()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Offsets are non-decreasing (a schedule, not a shuffle).
        let offsets = draw(7);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unpaced_pacer_yields_no_deadlines() {
        let mut p = Pacer::new(ArrivalMode::Poisson, None, 1, Instant::now());
        assert!(p.next_deadline().is_none());
        assert!(!p.open_loop());
        let mut p = Pacer::new(ArrivalMode::Constant, Some(0.0), 1, Instant::now());
        assert!(p.next_deadline().is_none());
    }

    #[test]
    fn paced_deadlines_advance_from_the_anchor() {
        let anchor = Instant::now();
        let mut p = Pacer::new(ArrivalMode::Constant, Some(1_000.0), 1, anchor);
        assert!(p.open_loop());
        let d0 = p.next_deadline().unwrap();
        let d1 = p.next_deadline().unwrap();
        assert_eq!(d0, anchor);
        assert_eq!(d1.duration_since(anchor), Duration::from_millis(1));
    }
}
