//! The performance evaluator (paper §5.5): replays state-access streams
//! against KV stores and measures throughput and latency.
//!
//! * [`LatencyHistogram`] — a log-bucketed histogram (HDR-style, ~3%
//!   relative error) for nanosecond latencies.
//! * [`TraceReplayer`] — Gadget's *offline* mode: replays a recorded
//!   [`Trace`](gadget_types::Trace) against any
//!   [`StateStore`](gadget_kv::StateStore), optionally throttled to a
//!   *service rate*, translating `merge` to read-modify-write for stores
//!   without a native merge operator.
//! * [`run_online`] — Gadget's *online* mode: generates and issues
//!   requests on the fly from a [`GadgetConfig`](gadget_core::GadgetConfig).
//! * [`run_concurrent`] — the concurrent-operators experiment (§6.4):
//!   several workloads hammer one shared store instance from separate
//!   threads.
//! * [`TraceReplayer::replay_observed`] / [`run_online_observed`] — the
//!   same runs with periodic metrics sampling into a
//!   [`SnapshotEmitter`](gadget_obs::SnapshotEmitter) time series.
//! * [`openloop`] — coordinated-omission-safe pacing: seeded
//!   constant-rate and Poisson arrival schedules whose latency is
//!   anchored to each op's *intended* arrival time.
//! * [`run_sweep`] — the service-rate observatory: walks offered load
//!   up a geometric ladder (plus bisection refinement) and finds the
//!   knee — the highest offered rate the store sustains.
//! * [`reshard`] — mid-replay live topology changes: a store wrapper
//!   that fires a planned shard split/migration at an op-count
//!   threshold while the replay keeps issuing traffic.

pub mod histogram;
pub mod openloop;
pub mod replayer;
pub mod reshard;
pub mod sweep;

pub use histogram::LatencyHistogram;
pub use openloop::{ArrivalMode, Pacer};
pub use replayer::{
    run_concurrent, run_online, run_online_observed, run_online_observed_with, run_online_with,
    ConcurrentRunError, Measured, ReplayOptions, RunReport, TraceReplayer, DEFAULT_ARRIVAL_SEED,
};
pub use reshard::{ReshardPlan, ReshardingStore};
pub use sweep::{run_sweep, RateStep, SweepOptions, SweepOutcome};
