//! Trace replay, online execution, and concurrent-operator runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use gadget_core::GadgetConfig;
use gadget_kv::{BatchResult, StateStore, StoreError};
use gadget_obs::{MetricsSnapshot, SnapshotEmitter};
use gadget_types::{Op, OpType, StateAccess, Trace};

use crate::histogram::LatencyHistogram;
use crate::openloop::{ArrivalMode, Pacer};

/// Default seed for open-loop arrival schedules (Poisson draws). A
/// fixed default keeps bare `--arrival poisson` runs reproducible;
/// decorrelate deliberately with [`ReplayOptions::arrival_seed`].
pub const DEFAULT_ARRIVAL_SEED: u64 = 0x9ad9e;

/// Histogram slot for an op type (`per_op` arrays are indexed this way).
fn op_index(op: OpType) -> usize {
    match op {
        OpType::Get => 0,
        OpType::Put => 1,
        OpType::Merge => 2,
        OpType::Delete => 3,
    }
}

/// Sleeps until `deadline` with sub-millisecond accuracy.
///
/// `thread::sleep` routinely overshoots by a scheduler quantum (~1ms on
/// this class of kernel), which wrecks pacing at service rates whose
/// inter-op gap is well below a millisecond. Hybrid strategy: coarse
/// sleep until ~1ms remains, then spin the final slice.
fn sleep_until(deadline: Instant) {
    const SPIN_SLICE: Duration = Duration::from_millis(1);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining <= SPIN_SLICE {
            break;
        }
        std::thread::sleep(remaining - SPIN_SLICE);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Applies a buffered batch through [`StateStore::apply_batch`], charging
/// each op the amortized batch latency and classifying get results into
/// hits/misses. Clears `ops`/`kinds`, folds the measurements into `m`
/// (including `executed`), and returns how many ops ran.
///
/// Under open-loop pacing, `waits` carries each op's scheduler lag —
/// how long past its intended arrival the batch was released — and the
/// recorded latency becomes `wait + amortized service`, so a batch that
/// drains late charges every op its full queueing delay. `None` keeps
/// the closed-loop behaviour (service time only).
fn flush_batch(
    store: &dyn StateStore,
    ops: &mut Vec<Op>,
    kinds: &mut Vec<OpType>,
    m: &mut Measured,
    waits: Option<&[u64]>,
) -> Result<u64, StoreError> {
    if ops.is_empty() {
        return Ok(0);
    }
    let started = Instant::now();
    let results = store.apply_batch(ops)?;
    let per_ns = started.elapsed().as_nanos() as u64 / ops.len() as u64;
    for (i, (kind, res)) in kinds.iter().zip(&results).enumerate() {
        if *kind == OpType::Get {
            if matches!(res, BatchResult::Value(Some(_))) {
                m.hits += 1;
            } else {
                m.misses += 1;
            }
        }
        match waits {
            Some(w) => {
                let wait = w.get(i).copied().unwrap_or(0);
                m.overall.record(wait + per_ns);
                m.per_op[op_index(*kind)].record(wait + per_ns);
                m.lag.record(wait);
                m.service.record(per_ns);
            }
            None => {
                m.overall.record(per_ns);
                m.per_op[op_index(*kind)].record(per_ns);
            }
        }
    }
    let n = ops.len() as u64;
    m.executed += n;
    ops.clear();
    kinds.clear();
    Ok(n)
}

/// Assembles the per-tick observation: the store's internal metrics plus
/// the replayer's own progress counters and latency histogram. Open-loop
/// runs additionally expose the scheduler-lag and service-time
/// histograms, and paced runs the offered vs achieved rate gauges, so a
/// Prometheus scrape sees the same queueing picture the report records.
fn observe(
    store: &dyn StateStore,
    m: &Measured,
    offered: Option<f64>,
    started: Instant,
) -> Vec<(String, MetricsSnapshot)> {
    let mut replayer = MetricsSnapshot::new();
    replayer.push_counter("ops", m.overall.count());
    replayer.push_counter("hits", m.hits);
    replayer.push_counter("misses", m.misses);
    replayer
        .histograms
        .push(("latency_ns".to_string(), m.overall.clone()));
    if m.lag.count() > 0 {
        replayer
            .histograms
            .push(("scheduler_lag_ns".to_string(), m.lag.clone()));
        replayer
            .histograms
            .push(("service_ns".to_string(), m.service.clone()));
    }
    if let Some(rate) = offered {
        replayer.push_gauge("offered_rate", rate.round() as i64);
    }
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 && m.executed > 0 {
        replayer.push_gauge(
            "achieved_rate",
            (m.executed as f64 / elapsed).round() as i64,
        );
    }
    vec![
        ("store".to_string(), store.metrics().unwrap_or_default()),
        ("replayer".to_string(), replayer),
    ]
}

/// Options controlling a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Target service rate in operations/second; `None` replays at full
    /// speed. The paper's replayer "can be configured with a service rate
    /// to speed up or slow down the trace arbitrarily" (§5.5).
    pub service_rate: Option<f64>,
    /// Cap on the number of operations replayed (`None` = whole trace).
    pub max_ops: Option<u64>,
    /// Ops issued per [`StateStore::apply_batch`] call. `1` (the default)
    /// replays op-by-op through the individual store methods, exactly as
    /// before batching existed; `0` is treated as `1`.
    pub batch_size: usize,
    /// Shard-affine replay threads. `1` (the default, `0` is treated the
    /// same) replays the trace on the calling thread in issue order.
    /// With `N > 1` the trace is partitioned by
    /// [`gadget_kv::shard_of`] over the encoded key into `N`
    /// subsequences that replay on their own threads against the shared
    /// store. Every access to a given key lands in the same subsequence,
    /// so per-key order — the guarantee keyed streaming state relies on —
    /// is preserved; only cross-key interleaving changes. Pairs naturally
    /// with a [`ShardedStore`](gadget_kv::ShardedStore) built with the
    /// same shard count (thread `i` then only ever touches shard `i`),
    /// but is correct against any store.
    pub replay_threads: usize,
    /// Arrival model for paced replay (ignored without a
    /// `service_rate`). [`ArrivalMode::Closed`] (the default) keeps the
    /// historical closed-loop behaviour: latency is measured from send
    /// time. The open modes ([`ArrivalMode::Constant`],
    /// [`ArrivalMode::Poisson`]) precompute an intended arrival schedule
    /// and anchor every op's latency to its intended arrival, so a
    /// stalled store accrues the full queueing penalty (no coordinated
    /// omission).
    pub arrival: ArrivalMode,
    /// Seed for the Poisson arrival schedule (deterministic per seed;
    /// ignored by the other modes).
    pub arrival_seed: u64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            service_rate: None,
            max_ops: None,
            batch_size: 1,
            replay_threads: 1,
            arrival: ArrivalMode::Closed,
            arrival_seed: DEFAULT_ARRIVAL_SEED,
        }
    }
}

/// Measurements from one replay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Store the run executed against.
    pub store: String,
    /// Workload label.
    pub workload: String,
    /// Operations executed.
    pub operations: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Throughput in operations per second.
    pub throughput: f64,
    /// Overall latency profile.
    pub latency: LatencySummary,
    /// Per-operation-type latency profiles, keyed by op name.
    pub per_op: Vec<(String, LatencySummary)>,
    /// `get`s that found a value.
    pub hits: u64,
    /// `get`s that found nothing.
    pub misses: u64,
    /// Full overall latency histogram. Unlike [`RunReport::latency`]
    /// (derived percentiles, for printing), the histogram is mergeable
    /// and comparable — `gadget-report` runs its KS/Wasserstein
    /// regression statistics on the decoded buckets.
    #[serde(default)]
    pub latency_hist: LatencyHistogram,
    /// Full per-op-type latency histograms, keyed by op name; only ops
    /// that actually ran appear.
    #[serde(default)]
    pub per_op_hist: Vec<(String, LatencyHistogram)>,
    /// Scheduler-lag histogram: how far past each op's *intended*
    /// arrival it was actually sent. Empty outside open-loop runs.
    #[serde(default)]
    pub lag_hist: LatencyHistogram,
    /// Pure service-time histogram (send → completion). In open-loop
    /// runs this is what closed-loop measurement *would* have reported;
    /// the gap between it and [`RunReport::latency_hist`] is the
    /// coordinated-omission error. Empty outside open-loop runs.
    #[serde(default)]
    pub service_hist: LatencyHistogram,
    /// Offered load in ops/s when the run was paced (`None` = full
    /// speed).
    #[serde(default)]
    pub offered_rate: Option<f64>,
    /// Arrival model name (`closed`, `constant`, `poisson`); `None` on
    /// reports from before arrival modes existed.
    #[serde(default)]
    pub arrival: Option<String>,
    /// Cross-process latency decomposition, keyed by segment name in
    /// pipeline order (`client_queue`, `outbound`, `service`,
    /// `return_path`, `end_to_end`). Populated only by network drives
    /// with client tracing enabled; empty everywhere else and on
    /// reports from before distributed tracing existed.
    #[serde(default)]
    pub decomposition: Vec<(String, LatencyHistogram)>,
}

/// Percentile summary extracted from a histogram.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (the paper's tail metric).
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Builds a summary from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            mean_ns: h.mean(),
            p50_ns: h.percentile(50.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            max_ns: h.max(),
        }
    }
}

/// Mid-run progress callback fed by the measuring core after every op
/// or batch with the full measurement state so far.
type ProgressFn<'a> = &'a mut dyn FnMut(&Measured);

/// Raw measurements accumulated by one replay loop — one worker's worth
/// in shard-affine mode, the whole run otherwise. Kept as histograms
/// (not summaries) so per-thread results merge exactly and downstream
/// consumers (`gadget-report`) get full distributions, not percentiles.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Overall latency histogram (ns).
    pub overall: LatencyHistogram,
    /// Per-op-type latency histograms, indexed like [`OpType::ALL`].
    pub per_op: [LatencyHistogram; 4],
    /// `get`s that found a value.
    pub hits: u64,
    /// `get`s that found nothing.
    pub misses: u64,
    /// Operations executed.
    pub executed: u64,
    /// Scheduler lag per op (intended arrival → send). Only populated
    /// by open-loop pacing; empty otherwise.
    pub lag: LatencyHistogram,
    /// Pure service time per op (send → completion). Only populated by
    /// open-loop pacing (closed-loop runs record it as `overall`).
    pub service: LatencyHistogram,
    /// Cross-process latency decomposition segments, keyed by name.
    /// Populated only when a traced network client feeds its segment
    /// histograms in (see `gadget-server`'s driver); empty otherwise.
    pub decomposition: Vec<(String, LatencyHistogram)>,
}

impl Default for Measured {
    fn default() -> Self {
        Measured::new()
    }
}

impl Measured {
    /// Creates an empty measurement.
    pub fn new() -> Self {
        Measured {
            overall: LatencyHistogram::new(),
            per_op: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            hits: 0,
            misses: 0,
            executed: 0,
            lag: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            decomposition: Vec::new(),
        }
    }

    /// Folds another worker's measurements into this one.
    pub fn absorb(&mut self, other: &Measured) {
        self.overall.merge(&other.overall);
        for (mine, theirs) in self.per_op.iter_mut().zip(&other.per_op) {
            mine.merge(theirs);
        }
        self.hits += other.hits;
        self.misses += other.misses;
        self.executed += other.executed;
        self.lag.merge(&other.lag);
        self.service.merge(&other.service);
        self.absorb_decomposition(&other.decomposition);
    }

    /// Merges decomposition segments by name — the exact-merge property
    /// latency histograms already have, extended to the named-segment
    /// list. Unseen names append in the order they first arrive.
    pub fn absorb_decomposition(&mut self, segments: &[(String, LatencyHistogram)]) {
        for (name, hist) in segments {
            match self.decomposition.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(hist),
                None => self.decomposition.push((name.clone(), hist.clone())),
            }
        }
    }

    /// Renders the measurements as a [`RunReport`], carrying both the
    /// printable percentile summaries and the full histograms.
    pub fn to_report(&self, store: &str, workload: &str, seconds: f64) -> RunReport {
        RunReport {
            store: store.to_string(),
            workload: workload.to_string(),
            operations: self.executed,
            seconds,
            throughput: if seconds > 0.0 {
                self.executed as f64 / seconds
            } else {
                0.0
            },
            latency: LatencySummary::from_histogram(&self.overall),
            per_op: OpType::ALL
                .iter()
                .zip(self.per_op.iter())
                .filter(|(_, h)| h.count() > 0)
                .map(|(op, h)| (op.name().to_string(), LatencySummary::from_histogram(h)))
                .collect(),
            hits: self.hits,
            misses: self.misses,
            latency_hist: self.overall.clone(),
            per_op_hist: OpType::ALL
                .iter()
                .zip(self.per_op.iter())
                .filter(|(_, h)| h.count() > 0)
                .map(|(op, h)| (op.name().to_string(), h.clone()))
                .collect(),
            lag_hist: self.lag.clone(),
            service_hist: self.service.clone(),
            offered_rate: None,
            arrival: None,
            decomposition: self.decomposition.clone(),
        }
    }
}

/// Converts a worker thread's panic payload into a [`StoreError`], so a
/// panicking replay worker surfaces as an error the caller can handle
/// instead of aborting the harness.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> StoreError {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    StoreError::Corruption(format!("replay worker panicked: {msg}"))
}

/// Replays traces against stores, measuring latency and throughput.
pub struct TraceReplayer {
    options: ReplayOptions,
    /// Reusable payload buffer (deterministic filler bytes).
    payload: Bytes,
}

impl Default for TraceReplayer {
    fn default() -> Self {
        TraceReplayer::new(ReplayOptions::default())
    }
}

impl TraceReplayer {
    /// Creates a replayer.
    pub fn new(options: ReplayOptions) -> Self {
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i * 31 + 7) as u8).collect();
        TraceReplayer {
            options,
            payload: Bytes::from(payload),
        }
    }

    fn payload_of(&self, size: u32) -> &[u8] {
        &self.payload[..(size as usize).min(self.payload.len())]
    }

    /// Zero-copy slice of the filler payload, for building owned [`Op`]s.
    fn payload_bytes(&self, size: u32) -> Bytes {
        self.payload
            .slice(0..(size as usize).min(self.payload.len()))
    }

    /// Materializes a trace access into an owned batch op, synthesizing
    /// the same payload bytes the op-by-op path would issue. Public so
    /// the crash harness can re-derive the exact op sequence a crashed
    /// replay issued and check recovered state against every prefix.
    pub fn materialize(&self, access: &StateAccess) -> Op {
        let key = Bytes::copy_from_slice(&access.key.encode());
        match access.op {
            OpType::Get => Op::Get { key },
            OpType::Put => Op::Put {
                key,
                value: self.payload_bytes(access.value_size),
            },
            OpType::Merge => Op::Merge {
                key,
                operand: self.payload_bytes(access.value_size),
            },
            OpType::Delete => Op::Delete { key },
        }
    }

    /// Applies one access to a store, timing it.
    fn apply(
        &self,
        store: &dyn StateStore,
        access: &StateAccess,
        hits: &mut u64,
        misses: &mut u64,
    ) -> Result<u64, StoreError> {
        let key = access.key.encode();
        let started = Instant::now();
        match access.op {
            OpType::Get => {
                if store.get(&key)?.is_some() {
                    *hits += 1;
                } else {
                    *misses += 1;
                }
            }
            OpType::Put => store.put(&key, self.payload_of(access.value_size))?,
            OpType::Merge => store.merge(&key, self.payload_of(access.value_size))?,
            OpType::Delete => store.delete(&key)?,
        }
        Ok(started.elapsed().as_nanos() as u64)
    }

    /// Replays a plain slice of accesses against `store`, returning the
    /// raw [`Measured`] aggregate instead of a full report.
    ///
    /// This is the building block for drivers that manage their own
    /// partitioning and session lifecycle — `gadget-server`'s
    /// multi-connection driver splits a trace across N connections and
    /// replays each slice through its own `NetStore`, then merges the
    /// per-connection `Measured`s with [`Measured::absorb`]. Honors
    /// `batch_size`, `service_rate` pacing, and `max_ops` from
    /// [`ReplayOptions`]; does not emit a replay phase span (callers
    /// wrap the whole drive in their own phase).
    pub fn replay_accesses(
        &self,
        accesses: &[StateAccess],
        store: &dyn StateStore,
    ) -> Result<Measured, StoreError> {
        let mut pacer = self.pacer(Instant::now());
        self.replay_accesses_paced(accesses, store, &mut pacer)
    }

    /// Like [`replay_accesses`](TraceReplayer::replay_accesses), but
    /// pacing against a caller-owned [`Pacer`], so a driver that replays
    /// in segments (e.g. `gadget-server`'s connection loop, which flips
    /// a churn coin between segments) keeps one absolute schedule across
    /// all of them instead of re-anchoring — and, in open-loop modes,
    /// charges ops their intended-arrival latency across segment
    /// boundaries too.
    pub fn replay_accesses_paced(
        &self,
        accesses: &[StateAccess],
        store: &dyn StateStore,
        pacer: &mut Pacer,
    ) -> Result<Measured, StoreError> {
        let limit = self.options.max_ops.unwrap_or(u64::MAX);
        self.run_accesses(accesses.iter(), store, limit, pacer, None)
    }

    /// Builds the arrival pacer these options describe, anchored at
    /// `anchor` (usually the replay start instant).
    pub fn pacer(&self, anchor: Instant) -> Pacer {
        Pacer::new(
            self.options.arrival,
            self.options.service_rate,
            self.options.arrival_seed,
            anchor,
        )
    }

    /// Per-worker pacer for shard-affine replay: the aggregate rate is
    /// split evenly and the Poisson seed decorrelated per worker, so
    /// the union of the workers' schedules approximates the requested
    /// aggregate arrival process.
    fn worker_pacer(&self, worker: usize, threads: usize, anchor: Instant) -> Pacer {
        Pacer::new(
            self.options.arrival,
            self.options.service_rate.map(|r| r / threads as f64),
            self.options
                .arrival_seed
                .wrapping_add((worker as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
            anchor,
        )
    }

    /// Replays `trace` against `store` and reports measurements.
    pub fn replay(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
    ) -> Result<RunReport, StoreError> {
        self.replay_inner(trace, store, workload, None)
    }

    /// Like [`replay`](TraceReplayer::replay), but also samples metrics
    /// into `emitter` on its op-count schedule (plus one final sample).
    pub fn replay_observed(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
        emitter: &mut SnapshotEmitter,
    ) -> Result<RunReport, StoreError> {
        self.replay_inner(trace, store, workload, Some(emitter))
    }

    fn replay_inner(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
        mut emitter: Option<&mut SnapshotEmitter>,
    ) -> Result<RunReport, StoreError> {
        let threads = self.options.replay_threads.max(1);
        if threads > 1 {
            return self.replay_shard_affine(trace, store, workload, threads, emitter);
        }
        let limit = self.options.max_ops.unwrap_or(u64::MAX);
        let offered = self.options.service_rate;

        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::REPLAY,
        );
        let started = Instant::now();
        let mut pacer = self.pacer(started);
        let measured = {
            let mut progress = |m: &Measured| {
                if let Some(em) = emitter.as_deref_mut() {
                    em.poll(m.executed, || observe(store, m, offered, started));
                }
            };
            self.run_accesses(trace.iter(), store, limit, &mut pacer, Some(&mut progress))?
        };
        let seconds = started.elapsed().as_secs_f64();
        if let Some(em) = emitter {
            em.finish(
                measured.executed,
                observe(store, &measured, offered, started),
            );
        }
        let mut report = measured.to_report(store.name(), workload, seconds);
        self.stamp(&mut report);
        Ok(report)
    }

    /// Stamps a report with the arrival model and offered rate this
    /// replayer was configured with.
    fn stamp(&self, report: &mut RunReport) {
        report.arrival = Some(self.options.arrival.name().to_string());
        report.offered_rate = self.options.service_rate;
    }

    /// Shard-affine parallel replay: partitions the trace by key shard
    /// into `threads` subsequences and replays each on its own thread
    /// against the shared store (see [`ReplayOptions::replay_threads`]).
    ///
    /// With a service rate set, each worker paces at `rate / threads`,
    /// so the aggregate rate approximates the requested one when the key
    /// distribution is balanced. Workers do not sample metrics mid-run;
    /// an emitter, when present, records one final sample.
    fn replay_shard_affine(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
        threads: usize,
        emitter: Option<&mut SnapshotEmitter>,
    ) -> Result<RunReport, StoreError> {
        let limit = self
            .options
            .max_ops
            .and_then(|n| usize::try_from(n).ok())
            .unwrap_or(usize::MAX);
        let mut parts: Vec<Vec<StateAccess>> = vec![Vec::new(); threads];
        for access in trace.iter().take(limit) {
            parts[gadget_kv::shard_of(&access.key.encode(), threads)].push(*access);
        }

        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::REPLAY,
        );
        let started = Instant::now();
        let results: Vec<Result<Measured, StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(shard, part)| {
                    scope.spawn(move || {
                        // Tag this worker's trace spans with its shard so
                        // hot-shard attribution sees replay threads too.
                        let _shard = gadget_obs::trace::shard_scope(shard as u64);
                        // The op cap was applied while partitioning, so
                        // each worker drains its whole subsequence.
                        let mut pacer = self.worker_pacer(shard, threads, started);
                        self.run_accesses(part.iter(), store, u64::MAX, &mut pacer, None)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| Err(panic_error(payload))))
                .collect()
        });
        let mut merged = Measured::new();
        for result in results {
            merged.absorb(&result?);
        }
        let seconds = started.elapsed().as_secs_f64();
        if let Some(em) = emitter {
            em.finish(
                merged.executed,
                observe(store, &merged, self.options.service_rate, started),
            );
        }
        let mut report = merged.to_report(store.name(), workload, seconds);
        self.stamp(&mut report);
        Ok(report)
    }

    /// The measuring core shared by single-threaded and shard-affine
    /// replay: drains `accesses` (op-by-op, or in `batch_size` chunks
    /// through [`StateStore::apply_batch`]), pacing each op against the
    /// pacer's absolute arrival schedule and invoking `progress` after
    /// every op or batch so callers can sample metrics mid-run.
    ///
    /// Pacing is anchored to the schedule start, never the previous
    /// op's send time, so error cannot accumulate over a run. In
    /// closed-loop mode op `i` may not start before its schedule slot
    /// and its latency is the service time; in open-loop mode latency
    /// is `send − intended arrival + service`, charging every op the
    /// queueing delay a stalled store inflicted on it.
    fn run_accesses<'t>(
        &self,
        accesses: impl Iterator<Item = &'t StateAccess>,
        store: &dyn StateStore,
        limit: u64,
        pacer: &mut Pacer,
        mut progress: Option<ProgressFn<'_>>,
    ) -> Result<Measured, StoreError> {
        let mut m = Measured::new();
        let batch_size = self.options.batch_size.max(1);
        if batch_size == 1 {
            for access in accesses {
                if m.executed >= limit {
                    break;
                }
                let deadline = pacer.next_deadline();
                if let Some(d) = deadline {
                    sleep_until(d);
                }
                let lag_ns = match deadline {
                    // `sleep_until` never returns early, so `now` is at
                    // or past the deadline; the saturation only guards
                    // clock weirdness.
                    Some(d) if pacer.open_loop() => {
                        Some(Instant::now().saturating_duration_since(d).as_nanos() as u64)
                    }
                    _ => None,
                };
                let service_ns = self.apply(store, access, &mut m.hits, &mut m.misses)?;
                match lag_ns {
                    Some(lag) => {
                        m.overall.record(lag + service_ns);
                        m.per_op[op_index(access.op)].record(lag + service_ns);
                        m.lag.record(lag);
                        m.service.record(service_ns);
                    }
                    None => {
                        m.overall.record(service_ns);
                        m.per_op[op_index(access.op)].record(service_ns);
                    }
                }
                m.executed += 1;
                if let Some(p) = progress.as_mut() {
                    p(&m);
                }
            }
        } else {
            let mut ops: Vec<Op> = Vec::with_capacity(batch_size);
            let mut kinds: Vec<OpType> = Vec::with_capacity(batch_size);
            let mut deadlines: Vec<Instant> = Vec::with_capacity(batch_size);
            let mut waits: Vec<u64> = Vec::with_capacity(batch_size);
            let mut iter = accesses;
            loop {
                while ops.len() < batch_size && m.executed + (ops.len() as u64) < limit {
                    match iter.next() {
                        Some(access) => {
                            ops.push(self.materialize(access));
                            kinds.push(access.op);
                            if let Some(d) = pacer.next_deadline() {
                                deadlines.push(d);
                            }
                        }
                        None => break,
                    }
                }
                if ops.is_empty() {
                    break;
                }
                let batch_waits = if deadlines.is_empty() {
                    None
                } else if pacer.open_loop() {
                    // The batch drains once every op in it has arrived;
                    // each op then waited from its own intended arrival
                    // to that release.
                    sleep_until(*deadlines.last().unwrap());
                    let release = Instant::now();
                    waits.clear();
                    waits.extend(
                        deadlines
                            .iter()
                            .map(|d| release.saturating_duration_since(*d).as_nanos() as u64),
                    );
                    Some(waits.as_slice())
                } else {
                    // Closed loop: the whole batch is released at its
                    // first op's slot, modelling a poll loop that drains
                    // a micro-batch per wakeup.
                    sleep_until(deadlines[0]);
                    None
                };
                flush_batch(store, &mut ops, &mut kinds, &mut m, batch_waits)?;
                deadlines.clear();
                if let Some(p) = progress.as_mut() {
                    p(&m);
                }
            }
        }
        Ok(m)
    }

    /// Preloads `keys` with `value_size`-byte values (YCSB-style load
    /// phase; not timed).
    pub fn preload<I>(
        &self,
        store: &dyn StateStore,
        keys: I,
        value_size: u32,
    ) -> Result<u64, StoreError>
    where
        I: IntoIterator<Item = gadget_types::StateKey>,
    {
        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::PRELOAD,
        );
        let mut n = 0;
        for key in keys {
            store.put(&key.encode(), self.payload_of(value_size))?;
            n += 1;
        }
        Ok(n)
    }
}

/// Online mode: generate the workload and issue it to the store on the
/// fly, without materializing the trace first.
pub fn run_online(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, &ReplayOptions::default(), None)
}

/// Like [`run_online`], but honouring `options` (currently `batch_size`:
/// state accesses emitted by the operator are buffered and issued through
/// [`StateStore::apply_batch`] in `batch_size` chunks).
pub fn run_online_with(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, options, None)
}

/// Like [`run_online`], but also samples metrics into `emitter` on its
/// op-count schedule (plus one final sample).
pub fn run_online_observed(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    emitter: &mut SnapshotEmitter,
) -> Result<RunReport, StoreError> {
    run_online_inner(
        config,
        store,
        workload,
        &ReplayOptions::default(),
        Some(emitter),
    )
}

/// [`run_online_with`] plus metrics sampling into `emitter`.
pub fn run_online_observed_with(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
    emitter: &mut SnapshotEmitter,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, options, Some(emitter))
}

fn run_online_inner(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
    mut emitter: Option<&mut SnapshotEmitter>,
) -> Result<RunReport, StoreError> {
    let kind = config.operator_kind().ok_or_else(|| {
        StoreError::InvalidArgument(format!("unknown operator {}", config.operator))
    })?;
    let stream = config.build_stream();
    let mut operator = kind.build(&config.operator_params());
    let replayer = TraceReplayer::default();
    let batch_size = options.batch_size.max(1);

    let _phase = gadget_obs::trace::span(
        gadget_obs::trace::Category::Phase,
        gadget_obs::trace::phase::ONLINE,
    );
    let mut m = Measured::new();
    let mut buf: Vec<StateAccess> = Vec::with_capacity(64);
    // Pending micro-batch (only used when batch_size > 1). Accesses are
    // buffered across events and flushed whenever `batch_size` have
    // accumulated, so batching is independent of per-event fan-out.
    let mut ops: Vec<Op> = Vec::new();
    let mut kinds: Vec<OpType> = Vec::new();
    let mut watermark = 0;
    let started = Instant::now();
    for element in stream {
        buf.clear();
        match element {
            gadget_types::StreamElement::Event(e) => {
                if watermark > 0 && e.timestamp + config.allowed_lateness <= watermark {
                    continue;
                }
                operator.on_event(&e, &mut buf);
            }
            gadget_types::StreamElement::Watermark(ts) => {
                if ts > watermark {
                    watermark = ts;
                    operator.on_watermark(ts, &mut buf);
                }
            }
        }
        for access in &buf {
            if batch_size > 1 {
                ops.push(replayer.materialize(access));
                kinds.push(access.op);
                if ops.len() >= batch_size {
                    flush_batch(store, &mut ops, &mut kinds, &mut m, None)?;
                }
            } else {
                let ns = replayer.apply(store, access, &mut m.hits, &mut m.misses)?;
                m.overall.record(ns);
                m.per_op[op_index(access.op)].record(ns);
                m.executed += 1;
            }
            if let Some(em) = emitter.as_deref_mut() {
                em.poll(m.executed, || observe(store, &m, None, started));
            }
        }
    }
    buf.clear();
    operator.on_end(&mut buf);
    for access in &buf {
        if batch_size > 1 {
            ops.push(replayer.materialize(access));
            kinds.push(access.op);
            if ops.len() >= batch_size {
                flush_batch(store, &mut ops, &mut kinds, &mut m, None)?;
            }
        } else {
            let ns = replayer.apply(store, access, &mut m.hits, &mut m.misses)?;
            m.overall.record(ns);
            m.per_op[op_index(access.op)].record(ns);
            m.executed += 1;
        }
    }
    // Drain the final partial batch.
    flush_batch(store, &mut ops, &mut kinds, &mut m, None)?;
    let seconds = started.elapsed().as_secs_f64();
    if let Some(em) = emitter {
        em.finish(m.executed, observe(store, &m, None, started));
    }
    Ok(m.to_report(store.name(), workload, seconds))
}

/// Error from [`run_concurrent`]: the first worker failure plus the
/// reports of every trace that still completed. Worker panics are
/// converted to [`StoreError`]s rather than propagated, so one
/// misbehaving operator cannot abort the whole experiment or discard
/// its peers' measurements.
#[derive(Debug)]
pub struct ConcurrentRunError {
    /// The first failure, in input order.
    pub error: StoreError,
    /// Reports from the traces that completed successfully, in input
    /// order.
    pub completed: Vec<RunReport>,
}

impl std::fmt::Display for ConcurrentRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} concurrent run(s) still completed)",
            self.error,
            self.completed.len()
        )
    }
}

impl std::error::Error for ConcurrentRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Concurrent-operators mode (§6.4): each trace replays on its own thread
/// against the *same* store instance. Returns one report per trace, in
/// input order. Every worker is joined before returning; when any fail,
/// the error carries the surviving runs' reports, and a worker panic
/// becomes a [`StoreError`] instead of aborting the process.
pub fn run_concurrent(
    traces: Vec<(String, Trace)>,
    store: Arc<dyn StateStore>,
    options: ReplayOptions,
) -> Result<Vec<RunReport>, ConcurrentRunError> {
    let mut handles = Vec::new();
    for (label, trace) in traces {
        let store = store.clone();
        let options = options.clone();
        handles.push(std::thread::spawn(move || {
            let replayer = TraceReplayer::new(options);
            replayer.replay(&trace, store.as_ref(), &label)
        }));
    }
    let mut completed = Vec::new();
    let mut first_error = None;
    for h in handles {
        match h.join().unwrap_or_else(|payload| Err(panic_error(payload))) {
            Ok(report) => completed.push(report),
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    match first_error {
        None => Ok(completed),
        Some(error) => Err(ConcurrentRunError { error, completed }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_core::{GeneratorConfig, OperatorKind};
    use gadget_kv::MemStore;
    use gadget_types::StateKey;

    fn small_trace(kind: OperatorKind) -> Trace {
        let cfg = GadgetConfig::synthetic(
            kind,
            GeneratorConfig {
                events: 2_000,
                ..GeneratorConfig::default()
            },
        );
        cfg.run()
    }

    #[test]
    fn replay_executes_every_operation() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert_eq!(report.operations, trace.len() as u64);
        assert!(report.throughput > 0.0);
        assert!(report.latency.p999_ns >= report.latency.p50_ns);
        assert!(!report.per_op.is_empty());
    }

    #[test]
    fn replay_semantics_window_state_cleared() {
        // After a full tumbling-window replay the store must be empty:
        // every pane is deleted when it fires.
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert!(store.is_empty(), "{} panes leaked", store.len());
    }

    #[test]
    fn gets_mostly_hit_for_incremental_windows() {
        // All gets except each pane's first probe and FGets-after-put find
        // a value, so the hit rate must be substantial.
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert!(report.hits > 0);
        let hit_rate = report.hits as f64 / (report.hits + report.misses) as f64;
        assert!(hit_rate > 0.5, "hit rate {hit_rate}");
    }

    #[test]
    fn max_ops_limits_replay() {
        let trace = small_trace(OperatorKind::Aggregation);
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            max_ops: Some(100),
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert_eq!(report.operations, 100);
    }

    #[test]
    fn service_rate_throttles() {
        let mut trace = Trace::new();
        for i in 0..50 {
            trace.push(gadget_types::StateAccess::put(StateKey::plain(i), 8, i));
        }
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            service_rate: Some(1_000.0), // 50 ops at 1k/s ≈ 50ms.
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert!(report.seconds >= 0.04, "ran too fast: {}s", report.seconds);
        assert!(report.throughput <= 1_500.0);
    }

    #[test]
    fn online_mode_matches_offline_counts() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let offline = cfg.run();
        let store = MemStore::new();
        let online = run_online(&cfg, &store, "agg").unwrap();
        assert_eq!(online.operations, offline.len() as u64);
    }

    #[test]
    fn concurrent_runs_share_a_store() {
        let t1 = small_trace(OperatorKind::SlidingIncr);
        let t2 = small_trace(OperatorKind::SlidingHol);
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let reports = run_concurrent(
            vec![("incr".into(), t1), ("hol".into(), t2)],
            store,
            ReplayOptions::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.operations > 0));
        assert_eq!(reports[0].workload, "incr");
    }

    #[test]
    fn observed_replay_emits_a_time_series() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let mut emitter = SnapshotEmitter::every(500);
        let report = TraceReplayer::default()
            .replay_observed(&trace, &store, "t", &mut emitter)
            .unwrap();
        let points = &emitter.series().points;
        assert!(points.len() >= 2, "only {} snapshots", points.len());
        let last = points.last().unwrap();
        assert_eq!(last.ops, report.operations);
        let replayer = last.registry("replayer").unwrap();
        assert_eq!(replayer.counter("ops"), Some(report.operations));
        assert!(replayer.histogram("latency_ns").unwrap().count() > 0);
        let store_snap = last.registry("store").unwrap();
        assert_eq!(
            store_snap.counter("gets").unwrap()
                + store_snap.counter("puts").unwrap()
                + store_snap.counter("merges").unwrap()
                + store_snap.counter("deletes").unwrap(),
            report.operations
        );
        // Earlier points show strictly less progress: a series, not a dump.
        assert!(points[0].ops < last.ops);
    }

    #[test]
    fn observed_online_run_emits_a_time_series() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let store = MemStore::new();
        let mut emitter = SnapshotEmitter::every(300);
        let report = run_online_observed(&cfg, &store, "agg", &mut emitter).unwrap();
        let points = &emitter.series().points;
        assert!(points.len() >= 2);
        assert_eq!(points.last().unwrap().ops, report.operations);
    }

    #[test]
    fn paced_replay_hits_target_rate_within_5_percent() {
        // Sub-millisecond gap (50us): plain thread::sleep pacing would
        // overshoot every wakeup by a scheduler quantum and land far
        // below target; the hybrid sleep-then-spin pacer must keep the
        // achieved rate within 5% of the requested one.
        let mut trace = Trace::new();
        for i in 0..2_000 {
            trace.push(gadget_types::StateAccess::put(
                StateKey::plain(i % 50),
                8,
                i,
            ));
        }
        let store = MemStore::new();
        let target = 20_000.0;
        let replayer = TraceReplayer::new(ReplayOptions {
            service_rate: Some(target),
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        let error = (report.throughput - target).abs() / target;
        assert!(
            error < 0.05,
            "achieved {:.0} ops/s vs target {target} ({:.1}% off)",
            report.throughput,
            error * 100.0
        );
    }

    #[test]
    fn batched_replay_matches_op_by_op() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let serial_store = MemStore::new();
        let serial = TraceReplayer::default()
            .replay(&trace, &serial_store, "t")
            .unwrap();
        for batch_size in [2, 64, 1000] {
            let store = MemStore::new();
            let replayer = TraceReplayer::new(ReplayOptions {
                batch_size,
                ..ReplayOptions::default()
            });
            let report = replayer.replay(&trace, &store, "t").unwrap();
            assert_eq!(report.operations, serial.operations, "batch {batch_size}");
            assert_eq!(report.hits, serial.hits, "batch {batch_size}");
            assert_eq!(report.misses, serial.misses, "batch {batch_size}");
            assert_eq!(report.per_op.len(), serial.per_op.len());
            // Tumbling windows delete every pane on firing, so both
            // replays must leave the store empty.
            assert!(store.is_empty());
        }
    }

    #[test]
    fn batched_replay_respects_max_ops() {
        let trace = small_trace(OperatorKind::Aggregation);
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            max_ops: Some(100),
            batch_size: 64, // 100 is not a multiple: final batch is short.
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert_eq!(report.operations, 100);
    }

    #[test]
    fn batched_online_matches_unbatched_counts() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let unbatched_store = MemStore::new();
        let unbatched = run_online(&cfg, &unbatched_store, "agg").unwrap();
        let batched_store = MemStore::new();
        let options = ReplayOptions {
            batch_size: 32,
            ..ReplayOptions::default()
        };
        let batched = run_online_with(&cfg, &batched_store, "agg", &options).unwrap();
        assert_eq!(batched.operations, unbatched.operations);
        assert_eq!(batched.hits, unbatched.hits);
        assert_eq!(batched.misses, unbatched.misses);
        assert_eq!(batched_store.len(), unbatched_store.len());
    }

    #[test]
    fn concurrent_replay_supports_batching() {
        let t1 = small_trace(OperatorKind::SlidingIncr);
        let t2 = small_trace(OperatorKind::SlidingHol);
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let reports = run_concurrent(
            vec![("incr".into(), t1), ("hol".into(), t2)],
            store,
            ReplayOptions {
                batch_size: 16,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.operations > 0));
    }

    /// Fails every op on one specific key, so exactly one concurrent
    /// worker errors while the others run to completion.
    struct PoisonStore {
        inner: MemStore,
        poison: Vec<u8>,
    }

    impl PoisonStore {
        fn check(&self, key: &[u8]) -> Result<(), StoreError> {
            if key == self.poison.as_slice() {
                Err(StoreError::InvalidArgument("poisoned key".into()))
            } else {
                Ok(())
            }
        }
    }

    impl StateStore for PoisonStore {
        fn name(&self) -> &'static str {
            "poison"
        }
        fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
            self.check(key)?;
            self.inner.get(key)
        }
        fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
            self.check(key)?;
            self.inner.put(key, value)
        }
        fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
            self.check(key)?;
            self.inner.merge(key, operand)
        }
        fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
            self.check(key)?;
            self.inner.delete(key)
        }
    }

    /// Panics on every op, exercising panic-to-error conversion.
    struct PanickyStore;

    impl StateStore for PanickyStore {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn get(&self, _key: &[u8]) -> Result<Option<Bytes>, StoreError> {
            panic!("synthetic store panic")
        }
        fn put(&self, _key: &[u8], _value: &[u8]) -> Result<(), StoreError> {
            panic!("synthetic store panic")
        }
        fn merge(&self, _key: &[u8], _operand: &[u8]) -> Result<(), StoreError> {
            panic!("synthetic store panic")
        }
        fn delete(&self, _key: &[u8]) -> Result<(), StoreError> {
            panic!("synthetic store panic")
        }
    }

    #[test]
    fn concurrent_failure_keeps_completed_reports() {
        let mut ok = Trace::new();
        let mut bad = Trace::new();
        for i in 0..200 {
            ok.push(gadget_types::StateAccess::put(
                StateKey::plain(i % 20),
                8,
                i,
            ));
            bad.push(gadget_types::StateAccess::put(StateKey::plain(999), 8, i));
        }
        let store: Arc<dyn StateStore> = Arc::new(PoisonStore {
            inner: MemStore::new(),
            poison: StateKey::plain(999).encode().to_vec(),
        });
        let err = run_concurrent(
            vec![("ok".into(), ok), ("bad".into(), bad)],
            store,
            ReplayOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err.error, StoreError::InvalidArgument(_)));
        assert_eq!(err.completed.len(), 1, "surviving run's report kept");
        assert_eq!(err.completed[0].workload, "ok");
        assert_eq!(err.completed[0].operations, 200);
        assert!(err.to_string().contains("completed"));
    }

    #[test]
    fn concurrent_panic_becomes_an_error() {
        let mut trace = Trace::new();
        trace.push(gadget_types::StateAccess::put(StateKey::plain(1), 8, 0));
        let store: Arc<dyn StateStore> = Arc::new(PanickyStore);
        let err = run_concurrent(
            vec![("boom".into(), trace)],
            store,
            ReplayOptions::default(),
        )
        .unwrap_err();
        assert!(err.completed.is_empty());
        let msg = err.error.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("synthetic store panic"), "{msg}");
    }

    #[test]
    fn shard_affine_replay_matches_single_thread() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let baseline_store = MemStore::new();
        let baseline = TraceReplayer::default()
            .replay(&trace, &baseline_store, "t")
            .unwrap();
        for threads in [2, 4, 7] {
            let store = MemStore::new();
            let replayer = TraceReplayer::new(ReplayOptions {
                replay_threads: threads,
                ..ReplayOptions::default()
            });
            let report = replayer.replay(&trace, &store, "t").unwrap();
            assert_eq!(report.operations, baseline.operations, "threads {threads}");
            // Hits and misses depend only on per-key history, which
            // shard-affine partitioning preserves exactly.
            assert_eq!(report.hits, baseline.hits, "threads {threads}");
            assert_eq!(report.misses, baseline.misses, "threads {threads}");
            assert_eq!(report.per_op.len(), baseline.per_op.len());
            // Per-key order is intact, so every tumbling pane still
            // fires and deletes its state.
            assert!(
                store.is_empty(),
                "threads {threads}: {} leaked",
                store.len()
            );
        }
    }

    #[test]
    fn shard_affine_replay_honours_max_ops_and_batching() {
        let trace = small_trace(OperatorKind::Aggregation);
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            max_ops: Some(100),
            batch_size: 16,
            replay_threads: 3,
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert_eq!(report.operations, 100);
    }

    #[test]
    fn shard_affine_replay_drives_a_sharded_store() {
        // Thread count == shard count: each replay thread only ever
        // touches its own shard, the intended zero-contention pairing.
        let trace = small_trace(OperatorKind::TumblingIncr);
        let plain = MemStore::new();
        let baseline = TraceReplayer::default()
            .replay(&trace, &plain, "t")
            .unwrap();
        let sharded = gadget_kv::ShardedStore::from_factory(4, |_| {
            Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>)
        })
        .unwrap();
        let replayer = TraceReplayer::new(ReplayOptions {
            replay_threads: 4,
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &sharded, "t").unwrap();
        assert_eq!(report.operations, baseline.operations);
        assert_eq!(report.hits, baseline.hits);
        assert_eq!(report.misses, baseline.misses);
    }

    #[test]
    fn preload_writes_all_keys() {
        let store = MemStore::new();
        let replayer = TraceReplayer::default();
        let n = replayer
            .preload(&store, (0..500).map(StateKey::plain), 64)
            .unwrap();
        assert_eq!(n, 500);
        assert_eq!(store.len(), 500);
    }
}
