//! Trace replay, online execution, and concurrent-operator runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use gadget_core::GadgetConfig;
use gadget_kv::{BatchResult, StateStore, StoreError};
use gadget_obs::{MetricsSnapshot, SnapshotEmitter};
use gadget_types::{Op, OpType, StateAccess, Trace};

use crate::histogram::LatencyHistogram;

/// Histogram slot for an op type (`per_op` arrays are indexed this way).
fn op_index(op: OpType) -> usize {
    match op {
        OpType::Get => 0,
        OpType::Put => 1,
        OpType::Merge => 2,
        OpType::Delete => 3,
    }
}

/// Sleeps until `deadline` with sub-millisecond accuracy.
///
/// `thread::sleep` routinely overshoots by a scheduler quantum (~1ms on
/// this class of kernel), which wrecks pacing at service rates whose
/// inter-op gap is well below a millisecond. Hybrid strategy: coarse
/// sleep until ~1ms remains, then spin the final slice.
fn sleep_until(deadline: Instant) {
    const SPIN_SLICE: Duration = Duration::from_millis(1);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining <= SPIN_SLICE {
            break;
        }
        std::thread::sleep(remaining - SPIN_SLICE);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Applies a buffered batch through [`StateStore::apply_batch`], charging
/// each op the amortized batch latency and classifying get results into
/// hits/misses. Clears `ops`/`kinds` and returns how many ops ran.
fn flush_batch(
    store: &dyn StateStore,
    ops: &mut Vec<Op>,
    kinds: &mut Vec<OpType>,
    overall: &mut LatencyHistogram,
    per_op: &mut [LatencyHistogram; 4],
    hits: &mut u64,
    misses: &mut u64,
) -> Result<u64, StoreError> {
    if ops.is_empty() {
        return Ok(0);
    }
    let started = Instant::now();
    let results = store.apply_batch(ops)?;
    let per_ns = started.elapsed().as_nanos() as u64 / ops.len() as u64;
    for (kind, res) in kinds.iter().zip(&results) {
        if *kind == OpType::Get {
            if matches!(res, BatchResult::Value(Some(_))) {
                *hits += 1;
            } else {
                *misses += 1;
            }
        }
        overall.record(per_ns);
        per_op[op_index(*kind)].record(per_ns);
    }
    let n = ops.len() as u64;
    ops.clear();
    kinds.clear();
    Ok(n)
}

/// Assembles the per-tick observation: the store's internal metrics plus
/// the replayer's own progress counters and latency histogram.
fn observe(
    store: &dyn StateStore,
    overall: &LatencyHistogram,
    hits: u64,
    misses: u64,
) -> Vec<(String, MetricsSnapshot)> {
    let mut replayer = MetricsSnapshot::new();
    replayer.push_counter("ops", overall.count());
    replayer.push_counter("hits", hits);
    replayer.push_counter("misses", misses);
    replayer
        .histograms
        .push(("latency_ns".to_string(), overall.clone()));
    vec![
        ("store".to_string(), store.metrics().unwrap_or_default()),
        ("replayer".to_string(), replayer),
    ]
}

/// Options controlling a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Target service rate in operations/second; `None` replays at full
    /// speed. The paper's replayer "can be configured with a service rate
    /// to speed up or slow down the trace arbitrarily" (§5.5).
    pub service_rate: Option<f64>,
    /// Cap on the number of operations replayed (`None` = whole trace).
    pub max_ops: Option<u64>,
    /// Ops issued per [`StateStore::apply_batch`] call. `1` (the default)
    /// replays op-by-op through the individual store methods, exactly as
    /// before batching existed; `0` is treated as `1`.
    pub batch_size: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            service_rate: None,
            max_ops: None,
            batch_size: 1,
        }
    }
}

/// Measurements from one replay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Store the run executed against.
    pub store: String,
    /// Workload label.
    pub workload: String,
    /// Operations executed.
    pub operations: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Throughput in operations per second.
    pub throughput: f64,
    /// Overall latency profile.
    pub latency: LatencySummary,
    /// Per-operation-type latency profiles, keyed by op name.
    pub per_op: Vec<(String, LatencySummary)>,
    /// `get`s that found a value.
    pub hits: u64,
    /// `get`s that found nothing.
    pub misses: u64,
}

/// Percentile summary extracted from a histogram.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (the paper's tail metric).
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Builds a summary from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            mean_ns: h.mean(),
            p50_ns: h.percentile(50.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            max_ns: h.max(),
        }
    }
}

/// Replays traces against stores, measuring latency and throughput.
pub struct TraceReplayer {
    options: ReplayOptions,
    /// Reusable payload buffer (deterministic filler bytes).
    payload: Bytes,
}

impl Default for TraceReplayer {
    fn default() -> Self {
        TraceReplayer::new(ReplayOptions::default())
    }
}

impl TraceReplayer {
    /// Creates a replayer.
    pub fn new(options: ReplayOptions) -> Self {
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i * 31 + 7) as u8).collect();
        TraceReplayer {
            options,
            payload: Bytes::from(payload),
        }
    }

    fn payload_of(&self, size: u32) -> &[u8] {
        &self.payload[..(size as usize).min(self.payload.len())]
    }

    /// Zero-copy slice of the filler payload, for building owned [`Op`]s.
    fn payload_bytes(&self, size: u32) -> Bytes {
        self.payload
            .slice(0..(size as usize).min(self.payload.len()))
    }

    /// Materializes a trace access into an owned batch op, synthesizing
    /// the same payload bytes the op-by-op path would issue.
    fn materialize(&self, access: &StateAccess) -> Op {
        let key = Bytes::copy_from_slice(&access.key.encode());
        match access.op {
            OpType::Get => Op::Get { key },
            OpType::Put => Op::Put {
                key,
                value: self.payload_bytes(access.value_size),
            },
            OpType::Merge => Op::Merge {
                key,
                operand: self.payload_bytes(access.value_size),
            },
            OpType::Delete => Op::Delete { key },
        }
    }

    /// Applies one access to a store, timing it.
    fn apply(
        &self,
        store: &dyn StateStore,
        access: &StateAccess,
        hits: &mut u64,
        misses: &mut u64,
    ) -> Result<u64, StoreError> {
        let key = access.key.encode();
        let started = Instant::now();
        match access.op {
            OpType::Get => {
                if store.get(&key)?.is_some() {
                    *hits += 1;
                } else {
                    *misses += 1;
                }
            }
            OpType::Put => store.put(&key, self.payload_of(access.value_size))?,
            OpType::Merge => store.merge(&key, self.payload_of(access.value_size))?,
            OpType::Delete => store.delete(&key)?,
        }
        Ok(started.elapsed().as_nanos() as u64)
    }

    /// Replays `trace` against `store` and reports measurements.
    pub fn replay(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
    ) -> Result<RunReport, StoreError> {
        self.replay_inner(trace, store, workload, None)
    }

    /// Like [`replay`](TraceReplayer::replay), but also samples metrics
    /// into `emitter` on its op-count schedule (plus one final sample).
    pub fn replay_observed(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
        emitter: &mut SnapshotEmitter,
    ) -> Result<RunReport, StoreError> {
        self.replay_inner(trace, store, workload, Some(emitter))
    }

    fn replay_inner(
        &self,
        trace: &Trace,
        store: &dyn StateStore,
        workload: &str,
        mut emitter: Option<&mut SnapshotEmitter>,
    ) -> Result<RunReport, StoreError> {
        let mut overall = LatencyHistogram::new();
        let mut per_op = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        let (mut hits, mut misses) = (0u64, 0u64);
        let limit = self.options.max_ops.unwrap_or(u64::MAX);
        let pace = self
            .options
            .service_rate
            .map(|rate| Duration::from_nanos((1e9 / rate) as u64));

        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::REPLAY,
        );
        let batch_size = self.options.batch_size.max(1);
        let started = Instant::now();
        let mut executed = 0u64;
        if batch_size == 1 {
            for access in trace.iter() {
                if executed >= limit {
                    break;
                }
                if let Some(gap) = pace {
                    // Closed-loop pacing against the absolute schedule: op
                    // `i` may not start before `started + i * gap`.
                    sleep_until(started + gap * executed as u32);
                }
                let ns = self.apply(store, access, &mut hits, &mut misses)?;
                overall.record(ns);
                per_op[op_index(access.op)].record(ns);
                executed += 1;
                if let Some(em) = emitter.as_deref_mut() {
                    em.poll(executed, || observe(store, &overall, hits, misses));
                }
            }
        } else {
            let mut ops: Vec<Op> = Vec::with_capacity(batch_size);
            let mut kinds: Vec<OpType> = Vec::with_capacity(batch_size);
            let mut iter = trace.iter();
            loop {
                while ops.len() < batch_size && executed + (ops.len() as u64) < limit {
                    match iter.next() {
                        Some(access) => {
                            ops.push(self.materialize(access));
                            kinds.push(access.op);
                        }
                        None => break,
                    }
                }
                if ops.is_empty() {
                    break;
                }
                if let Some(gap) = pace {
                    // The whole batch is released at its first op's slot,
                    // modelling a poll loop that drains a micro-batch per
                    // wakeup.
                    sleep_until(started + gap * executed as u32);
                }
                executed += flush_batch(
                    store,
                    &mut ops,
                    &mut kinds,
                    &mut overall,
                    &mut per_op,
                    &mut hits,
                    &mut misses,
                )?;
                if let Some(em) = emitter.as_deref_mut() {
                    em.poll(executed, || observe(store, &overall, hits, misses));
                }
            }
        }
        let seconds = started.elapsed().as_secs_f64();
        if let Some(em) = emitter {
            em.finish(executed, observe(store, &overall, hits, misses));
        }

        Ok(RunReport {
            store: store.name().to_string(),
            workload: workload.to_string(),
            operations: executed,
            seconds,
            throughput: if seconds > 0.0 {
                executed as f64 / seconds
            } else {
                0.0
            },
            latency: LatencySummary::from_histogram(&overall),
            per_op: OpType::ALL
                .iter()
                .zip(per_op.iter())
                .filter(|(_, h)| h.count() > 0)
                .map(|(op, h)| (op.name().to_string(), LatencySummary::from_histogram(h)))
                .collect(),
            hits,
            misses,
        })
    }

    /// Preloads `keys` with `value_size`-byte values (YCSB-style load
    /// phase; not timed).
    pub fn preload<I>(
        &self,
        store: &dyn StateStore,
        keys: I,
        value_size: u32,
    ) -> Result<u64, StoreError>
    where
        I: IntoIterator<Item = gadget_types::StateKey>,
    {
        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::PRELOAD,
        );
        let mut n = 0;
        for key in keys {
            store.put(&key.encode(), self.payload_of(value_size))?;
            n += 1;
        }
        Ok(n)
    }
}

/// Online mode: generate the workload and issue it to the store on the
/// fly, without materializing the trace first.
pub fn run_online(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, &ReplayOptions::default(), None)
}

/// Like [`run_online`], but honouring `options` (currently `batch_size`:
/// state accesses emitted by the operator are buffered and issued through
/// [`StateStore::apply_batch`] in `batch_size` chunks).
pub fn run_online_with(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, options, None)
}

/// Like [`run_online`], but also samples metrics into `emitter` on its
/// op-count schedule (plus one final sample).
pub fn run_online_observed(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    emitter: &mut SnapshotEmitter,
) -> Result<RunReport, StoreError> {
    run_online_inner(
        config,
        store,
        workload,
        &ReplayOptions::default(),
        Some(emitter),
    )
}

/// [`run_online_with`] plus metrics sampling into `emitter`.
pub fn run_online_observed_with(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
    emitter: &mut SnapshotEmitter,
) -> Result<RunReport, StoreError> {
    run_online_inner(config, store, workload, options, Some(emitter))
}

fn run_online_inner(
    config: &GadgetConfig,
    store: &dyn StateStore,
    workload: &str,
    options: &ReplayOptions,
    mut emitter: Option<&mut SnapshotEmitter>,
) -> Result<RunReport, StoreError> {
    let kind = config.operator_kind().ok_or_else(|| {
        StoreError::InvalidArgument(format!("unknown operator {}", config.operator))
    })?;
    let stream = config.build_stream();
    let mut operator = kind.build(&config.operator_params());
    let replayer = TraceReplayer::default();
    let batch_size = options.batch_size.max(1);

    let _phase = gadget_obs::trace::span(
        gadget_obs::trace::Category::Phase,
        gadget_obs::trace::phase::ONLINE,
    );
    let mut overall = LatencyHistogram::new();
    let mut per_op = [
        LatencyHistogram::new(),
        LatencyHistogram::new(),
        LatencyHistogram::new(),
        LatencyHistogram::new(),
    ];
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut buf: Vec<StateAccess> = Vec::with_capacity(64);
    // Pending micro-batch (only used when batch_size > 1). Accesses are
    // buffered across events and flushed whenever `batch_size` have
    // accumulated, so batching is independent of per-event fan-out.
    let mut ops: Vec<Op> = Vec::new();
    let mut kinds: Vec<OpType> = Vec::new();
    let mut executed = 0u64;
    let mut watermark = 0;
    let started = Instant::now();
    for element in stream {
        buf.clear();
        match element {
            gadget_types::StreamElement::Event(e) => {
                if watermark > 0 && e.timestamp + config.allowed_lateness <= watermark {
                    continue;
                }
                operator.on_event(&e, &mut buf);
            }
            gadget_types::StreamElement::Watermark(ts) => {
                if ts > watermark {
                    watermark = ts;
                    operator.on_watermark(ts, &mut buf);
                }
            }
        }
        for access in &buf {
            if batch_size > 1 {
                ops.push(replayer.materialize(access));
                kinds.push(access.op);
                if ops.len() >= batch_size {
                    executed += flush_batch(
                        store,
                        &mut ops,
                        &mut kinds,
                        &mut overall,
                        &mut per_op,
                        &mut hits,
                        &mut misses,
                    )?;
                }
            } else {
                let ns = replayer.apply(store, access, &mut hits, &mut misses)?;
                overall.record(ns);
                executed += 1;
            }
            if let Some(em) = emitter.as_deref_mut() {
                em.poll(executed, || observe(store, &overall, hits, misses));
            }
        }
    }
    buf.clear();
    operator.on_end(&mut buf);
    for access in &buf {
        if batch_size > 1 {
            ops.push(replayer.materialize(access));
            kinds.push(access.op);
            if ops.len() >= batch_size {
                executed += flush_batch(
                    store,
                    &mut ops,
                    &mut kinds,
                    &mut overall,
                    &mut per_op,
                    &mut hits,
                    &mut misses,
                )?;
            }
        } else {
            let ns = replayer.apply(store, access, &mut hits, &mut misses)?;
            overall.record(ns);
            executed += 1;
        }
    }
    // Drain the final partial batch.
    executed += flush_batch(
        store,
        &mut ops,
        &mut kinds,
        &mut overall,
        &mut per_op,
        &mut hits,
        &mut misses,
    )?;
    let seconds = started.elapsed().as_secs_f64();
    if let Some(em) = emitter {
        em.finish(executed, observe(store, &overall, hits, misses));
    }

    Ok(RunReport {
        store: store.name().to_string(),
        workload: workload.to_string(),
        operations: executed,
        seconds,
        throughput: if seconds > 0.0 {
            executed as f64 / seconds
        } else {
            0.0
        },
        latency: LatencySummary::from_histogram(&overall),
        per_op: Vec::new(),
        hits,
        misses,
    })
}

/// Concurrent-operators mode (§6.4): each trace replays on its own thread
/// against the *same* store instance. Returns one report per trace, in
/// input order.
pub fn run_concurrent(
    traces: Vec<(String, Trace)>,
    store: Arc<dyn StateStore>,
    options: ReplayOptions,
) -> Result<Vec<RunReport>, StoreError> {
    let mut handles = Vec::new();
    for (label, trace) in traces {
        let store = store.clone();
        let options = options.clone();
        handles.push(std::thread::spawn(move || {
            let replayer = TraceReplayer::new(options);
            replayer.replay(&trace, store.as_ref(), &label)
        }));
    }
    let mut reports = Vec::new();
    for h in handles {
        reports.push(h.join().expect("replay thread panicked")?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_core::{GeneratorConfig, OperatorKind};
    use gadget_kv::MemStore;
    use gadget_types::StateKey;

    fn small_trace(kind: OperatorKind) -> Trace {
        let cfg = GadgetConfig::synthetic(
            kind,
            GeneratorConfig {
                events: 2_000,
                ..GeneratorConfig::default()
            },
        );
        cfg.run()
    }

    #[test]
    fn replay_executes_every_operation() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert_eq!(report.operations, trace.len() as u64);
        assert!(report.throughput > 0.0);
        assert!(report.latency.p999_ns >= report.latency.p50_ns);
        assert!(!report.per_op.is_empty());
    }

    #[test]
    fn replay_semantics_window_state_cleared() {
        // After a full tumbling-window replay the store must be empty:
        // every pane is deleted when it fires.
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert!(store.is_empty(), "{} panes leaked", store.len());
    }

    #[test]
    fn gets_mostly_hit_for_incremental_windows() {
        // All gets except each pane's first probe and FGets-after-put find
        // a value, so the hit rate must be substantial.
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(&trace, &store, "t")
            .unwrap();
        assert!(report.hits > 0);
        let hit_rate = report.hits as f64 / (report.hits + report.misses) as f64;
        assert!(hit_rate > 0.5, "hit rate {hit_rate}");
    }

    #[test]
    fn max_ops_limits_replay() {
        let trace = small_trace(OperatorKind::Aggregation);
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            max_ops: Some(100),
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert_eq!(report.operations, 100);
    }

    #[test]
    fn service_rate_throttles() {
        let mut trace = Trace::new();
        for i in 0..50 {
            trace.push(gadget_types::StateAccess::put(StateKey::plain(i), 8, i));
        }
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            service_rate: Some(1_000.0), // 50 ops at 1k/s ≈ 50ms.
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert!(report.seconds >= 0.04, "ran too fast: {}s", report.seconds);
        assert!(report.throughput <= 1_500.0);
    }

    #[test]
    fn online_mode_matches_offline_counts() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let offline = cfg.run();
        let store = MemStore::new();
        let online = run_online(&cfg, &store, "agg").unwrap();
        assert_eq!(online.operations, offline.len() as u64);
    }

    #[test]
    fn concurrent_runs_share_a_store() {
        let t1 = small_trace(OperatorKind::SlidingIncr);
        let t2 = small_trace(OperatorKind::SlidingHol);
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let reports = run_concurrent(
            vec![("incr".into(), t1), ("hol".into(), t2)],
            store,
            ReplayOptions::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.operations > 0));
        assert_eq!(reports[0].workload, "incr");
    }

    #[test]
    fn observed_replay_emits_a_time_series() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let store = MemStore::new();
        let mut emitter = SnapshotEmitter::every(500);
        let report = TraceReplayer::default()
            .replay_observed(&trace, &store, "t", &mut emitter)
            .unwrap();
        let points = &emitter.series().points;
        assert!(points.len() >= 2, "only {} snapshots", points.len());
        let last = points.last().unwrap();
        assert_eq!(last.ops, report.operations);
        let replayer = last.registry("replayer").unwrap();
        assert_eq!(replayer.counter("ops"), Some(report.operations));
        assert!(replayer.histogram("latency_ns").unwrap().count() > 0);
        let store_snap = last.registry("store").unwrap();
        assert_eq!(
            store_snap.counter("gets").unwrap()
                + store_snap.counter("puts").unwrap()
                + store_snap.counter("merges").unwrap()
                + store_snap.counter("deletes").unwrap(),
            report.operations
        );
        // Earlier points show strictly less progress: a series, not a dump.
        assert!(points[0].ops < last.ops);
    }

    #[test]
    fn observed_online_run_emits_a_time_series() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let store = MemStore::new();
        let mut emitter = SnapshotEmitter::every(300);
        let report = run_online_observed(&cfg, &store, "agg", &mut emitter).unwrap();
        let points = &emitter.series().points;
        assert!(points.len() >= 2);
        assert_eq!(points.last().unwrap().ops, report.operations);
    }

    #[test]
    fn paced_replay_hits_target_rate_within_5_percent() {
        // Sub-millisecond gap (50us): plain thread::sleep pacing would
        // overshoot every wakeup by a scheduler quantum and land far
        // below target; the hybrid sleep-then-spin pacer must keep the
        // achieved rate within 5% of the requested one.
        let mut trace = Trace::new();
        for i in 0..2_000 {
            trace.push(gadget_types::StateAccess::put(
                StateKey::plain(i % 50),
                8,
                i,
            ));
        }
        let store = MemStore::new();
        let target = 20_000.0;
        let replayer = TraceReplayer::new(ReplayOptions {
            service_rate: Some(target),
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        let error = (report.throughput - target).abs() / target;
        assert!(
            error < 0.05,
            "achieved {:.0} ops/s vs target {target} ({:.1}% off)",
            report.throughput,
            error * 100.0
        );
    }

    #[test]
    fn batched_replay_matches_op_by_op() {
        let trace = small_trace(OperatorKind::TumblingIncr);
        let serial_store = MemStore::new();
        let serial = TraceReplayer::default()
            .replay(&trace, &serial_store, "t")
            .unwrap();
        for batch_size in [2, 64, 1000] {
            let store = MemStore::new();
            let replayer = TraceReplayer::new(ReplayOptions {
                batch_size,
                ..ReplayOptions::default()
            });
            let report = replayer.replay(&trace, &store, "t").unwrap();
            assert_eq!(report.operations, serial.operations, "batch {batch_size}");
            assert_eq!(report.hits, serial.hits, "batch {batch_size}");
            assert_eq!(report.misses, serial.misses, "batch {batch_size}");
            assert_eq!(report.per_op.len(), serial.per_op.len());
            // Tumbling windows delete every pane on firing, so both
            // replays must leave the store empty.
            assert!(store.is_empty());
        }
    }

    #[test]
    fn batched_replay_respects_max_ops() {
        let trace = small_trace(OperatorKind::Aggregation);
        let store = MemStore::new();
        let replayer = TraceReplayer::new(ReplayOptions {
            max_ops: Some(100),
            batch_size: 64, // 100 is not a multiple: final batch is short.
            ..ReplayOptions::default()
        });
        let report = replayer.replay(&trace, &store, "t").unwrap();
        assert_eq!(report.operations, 100);
    }

    #[test]
    fn batched_online_matches_unbatched_counts() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let unbatched_store = MemStore::new();
        let unbatched = run_online(&cfg, &unbatched_store, "agg").unwrap();
        let batched_store = MemStore::new();
        let options = ReplayOptions {
            batch_size: 32,
            ..ReplayOptions::default()
        };
        let batched = run_online_with(&cfg, &batched_store, "agg", &options).unwrap();
        assert_eq!(batched.operations, unbatched.operations);
        assert_eq!(batched.hits, unbatched.hits);
        assert_eq!(batched.misses, unbatched.misses);
        assert_eq!(batched_store.len(), unbatched_store.len());
    }

    #[test]
    fn concurrent_replay_supports_batching() {
        let t1 = small_trace(OperatorKind::SlidingIncr);
        let t2 = small_trace(OperatorKind::SlidingHol);
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let reports = run_concurrent(
            vec![("incr".into(), t1), ("hol".into(), t2)],
            store,
            ReplayOptions {
                batch_size: 16,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.operations > 0));
    }

    #[test]
    fn preload_writes_all_keys() {
        let store = MemStore::new();
        let replayer = TraceReplayer::default();
        let n = replayer
            .preload(&store, (0..500).map(StateKey::plain), 64)
            .unwrap();
        assert_eq!(n, 500);
        assert_eq!(store.len(), 500);
    }
}
