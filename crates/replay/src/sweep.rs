//! The service-rate observatory: latency–throughput curves with knee
//! detection.
//!
//! A single paced run answers "how does the store behave at rate R?";
//! a *sweep* answers the question the paper's evaluator is organized
//! around — "what is the highest service rate this configuration
//! sustains, and what does latency look like on the way there?". The
//! sweep walks offered load up a geometric ladder, replaying the same
//! trace open-loop at each step, until the store stops keeping up,
//! then narrows the boundary with a few geometric bisection steps.
//!
//! A rate step is **sustainable** when the achieved throughput is at
//! least [`SweepOptions::sustainable_fraction`] of the offered rate
//! (default 99%) *and* intended-time p99 stays under
//! [`SweepOptions::p99_bound_ns`] (when set). The **knee** is the
//! highest sustainable offered rate observed — the max-sustainable-
//! throughput point in the sense of Karimov et al., measured without
//! coordinated omission because every step runs open-loop.

use gadget_kv::{StateStore, StoreError};
use gadget_types::Trace;

use crate::openloop::ArrivalMode;
use crate::replayer::{ReplayOptions, RunReport, TraceReplayer, DEFAULT_ARRIVAL_SEED};

/// Tunables for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Arrival model for every step. Open-loop modes are the point of
    /// the exercise; `closed` is allowed but measures send-time latency
    /// and will understate the queueing penalty near saturation.
    pub arrival: ArrivalMode,
    /// Seed for the Poisson arrival schedule (same seed → same
    /// schedule at every step → reproducible knee).
    pub seed: u64,
    /// Explicit offered rates (ops/s). When non-empty, exactly these
    /// steps run (sorted ascending) and the ladder/bisection logic is
    /// skipped — the deterministic choice for CI baselines.
    pub rates: Vec<f64>,
    /// First rung of the geometric ladder (ops/s).
    pub start_rate: f64,
    /// The ladder stops climbing past this rate even if every step
    /// sustains.
    pub max_rate: f64,
    /// Ladder multiplier between rungs (must be > 1).
    pub growth: f64,
    /// Bisection steps refining the sustainable/unsustainable boundary
    /// after the ladder brackets it. Each step runs at the geometric
    /// midpoint `sqrt(lo · hi)`.
    pub refine: u32,
    /// Operations replayed per step (the same prefix of the trace each
    /// time).
    pub ops_per_step: u64,
    /// Batch size for each step's replay.
    pub batch_size: usize,
    /// Shard-affine replay threads for each step.
    pub replay_threads: usize,
    /// A step sustains when `achieved ≥ fraction × offered`.
    pub sustainable_fraction: f64,
    /// A step additionally requires intended-time p99 ≤ this bound;
    /// `0` disables the latency criterion.
    pub p99_bound_ns: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            arrival: ArrivalMode::Poisson,
            seed: DEFAULT_ARRIVAL_SEED,
            rates: Vec::new(),
            start_rate: 1_000.0,
            max_rate: 64_000.0,
            growth: 2.0,
            refine: 2,
            ops_per_step: 4_000,
            batch_size: 1,
            replay_threads: 1,
            sustainable_fraction: 0.99,
            p99_bound_ns: 100_000_000, // 100ms
        }
    }
}

/// One step of the sweep: the store's behaviour at one offered rate.
#[derive(Debug, Clone)]
pub struct RateStep {
    /// Offered load in ops/s.
    pub offered: f64,
    /// Achieved throughput in ops/s.
    pub achieved: f64,
    /// Whether the step met the sustainability criteria.
    pub sustainable: bool,
    /// The full per-step report (intended-time latency under open-loop
    /// arrivals).
    pub run: RunReport,
}

/// What a sweep measured.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// All steps, sorted by offered rate ascending (bisection steps
    /// interleave into their rate position, not execution order).
    pub steps: Vec<RateStep>,
    /// Index into `steps` of the knee — the highest sustainable offered
    /// rate — or `None` when no step sustained.
    pub knee: Option<usize>,
}

impl SweepOutcome {
    /// The knee step, when one exists.
    pub fn knee_step(&self) -> Option<&RateStep> {
        self.knee.map(|i| &self.steps[i])
    }
}

/// Replays `trace` at one offered rate and judges sustainability.
fn run_step(
    trace: &Trace,
    store: &dyn StateStore,
    workload: &str,
    opts: &SweepOptions,
    rate: f64,
) -> Result<RateStep, StoreError> {
    let replayer = TraceReplayer::new(ReplayOptions {
        service_rate: Some(rate),
        max_ops: Some(opts.ops_per_step),
        batch_size: opts.batch_size,
        replay_threads: opts.replay_threads,
        arrival: opts.arrival,
        arrival_seed: opts.seed,
    });
    let run = replayer.replay(trace, store, workload)?;
    let achieved = run.throughput;
    let sustainable = achieved >= opts.sustainable_fraction * rate
        && (opts.p99_bound_ns == 0 || run.latency.p99_ns <= opts.p99_bound_ns);
    Ok(RateStep {
        offered: rate,
        achieved,
        sustainable,
        run,
    })
}

/// Sweeps offered load across `trace` against `store`, returning every
/// step plus the detected knee. `progress`, when given, fires after
/// each step completes (in execution order, before sorting).
///
/// The same store instance serves every step, so state carried across
/// steps (tumbling windows clean up after themselves; an LSM keeps its
/// levels warm) mirrors a long-lived deployment rather than a cold
/// store per rate. Steps replay the same `ops_per_step`-op prefix of
/// the trace with the same arrival seed, so two sweeps with identical
/// options walk identical schedules.
pub fn run_sweep(
    trace: &Trace,
    store: &dyn StateStore,
    workload: &str,
    opts: &SweepOptions,
    mut progress: Option<&mut dyn FnMut(&RateStep)>,
) -> Result<SweepOutcome, StoreError> {
    if opts.rates.is_empty() {
        // `partial_cmp` (not `>`) so NaN fails validation too.
        if opts.growth.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
            return Err(StoreError::InvalidArgument(format!(
                "sweep growth must be > 1 (got {})",
                opts.growth
            )));
        }
        if opts.start_rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || opts.max_rate < opts.start_rate
        {
            return Err(StoreError::InvalidArgument(format!(
                "sweep needs 0 < start-rate ≤ max-rate (got {}..{})",
                opts.start_rate, opts.max_rate
            )));
        }
    }
    let mut steps: Vec<RateStep> = Vec::new();
    let mut push = |step: RateStep, steps: &mut Vec<RateStep>| {
        if let Some(p) = progress.as_mut() {
            p(&step);
        }
        steps.push(step);
    };

    if !opts.rates.is_empty() {
        let mut rates = opts.rates.clone();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for rate in rates {
            let step = run_step(trace, store, workload, opts, rate)?;
            push(step, &mut steps);
        }
    } else {
        // Geometric ladder until the first unsustainable rung (or the
        // rate cap), remembering the bracket around the boundary.
        let mut rate = opts.start_rate;
        let mut last_good: Option<f64> = None;
        let mut first_bad: Option<f64> = None;
        while rate <= opts.max_rate * (1.0 + 1e-9) {
            let step = run_step(trace, store, workload, opts, rate)?;
            let sustainable = step.sustainable;
            push(step, &mut steps);
            if sustainable {
                last_good = Some(rate);
            } else {
                first_bad = Some(rate);
                break;
            }
            rate *= opts.growth;
        }
        // Bisect the bracket at geometric midpoints: rates live on a
        // log scale, so sqrt(lo·hi) splits the bracket evenly in the
        // metric the ladder climbed.
        if let (Some(mut lo), Some(mut hi)) = (last_good, first_bad) {
            for _ in 0..opts.refine {
                let mid = (lo * hi).sqrt();
                let step = run_step(trace, store, workload, opts, mid)?;
                let sustainable = step.sustainable;
                push(step, &mut steps);
                if sustainable {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
    }

    steps.sort_by(|a, b| a.offered.partial_cmp(&b.offered).unwrap());
    let knee = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.sustainable)
        .max_by(|(_, a), (_, b)| a.offered.partial_cmp(&b.offered).unwrap())
        .map(|(i, _)| i);
    Ok(SweepOutcome { steps, knee })
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use bytes::Bytes;
    use gadget_kv::MemStore;
    use gadget_types::{StateAccess, StateKey};

    use super::*;

    fn put_trace(ops: usize, keys: u64) -> Trace {
        let mut trace = Trace::new();
        for i in 0..ops {
            trace.push(StateAccess::put(
                StateKey::plain(i as u64 % keys),
                8,
                i as u64,
            ));
        }
        trace
    }

    /// Spins (not sleeps — sleep overshoot would blur the capacity) for
    /// a fixed slice on every op, capping throughput near `1e9/spin_ns`.
    struct SlowStore {
        inner: MemStore,
        spin: Duration,
    }

    impl SlowStore {
        fn delay(&self) {
            let until = Instant::now() + self.spin;
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        }
    }

    impl StateStore for SlowStore {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
            self.delay();
            self.inner.get(key)
        }
        fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
            self.delay();
            self.inner.put(key, value)
        }
        fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
            self.delay();
            self.inner.merge(key, operand)
        }
        fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
            self.delay();
            self.inner.delete(key)
        }
    }

    #[test]
    fn explicit_rates_run_exactly_those_steps() {
        let trace = put_trace(4_000, 64);
        let store = MemStore::new();
        let opts = SweepOptions {
            rates: vec![8_000.0, 2_000.0, 4_000.0],
            ops_per_step: 300,
            ..SweepOptions::default()
        };
        let outcome = run_sweep(&trace, &store, "w", &opts, None).unwrap();
        let offered: Vec<f64> = outcome.steps.iter().map(|s| s.offered).collect();
        assert_eq!(offered, vec![2_000.0, 4_000.0, 8_000.0], "sorted ascending");
        // A mem store sustains a few thousand ops/s trivially, so the
        // knee is the top step.
        assert_eq!(outcome.knee, Some(2));
        assert!(outcome.knee_step().unwrap().sustainable);
        for step in &outcome.steps {
            assert_eq!(step.run.operations, 300);
            assert_eq!(step.run.arrival.as_deref(), Some("poisson"));
            assert_eq!(step.run.offered_rate, Some(step.offered));
            assert!(step.run.lag_hist.count() > 0, "open-loop lag recorded");
        }
    }

    #[test]
    fn ladder_brackets_and_bisects_the_knee() {
        // ~180us spin per op → capacity ≈ 5.5k ops/s. The ladder from
        // 2k at ×2 growth must sustain 2k/4k, fail 8k, and bisection
        // must place the knee strictly inside (4k, 8k).
        let trace = put_trace(2_000, 64);
        let store = SlowStore {
            inner: MemStore::new(),
            spin: Duration::from_micros(180),
        };
        let opts = SweepOptions {
            arrival: ArrivalMode::Constant,
            start_rate: 2_000.0,
            max_rate: 32_000.0,
            growth: 2.0,
            refine: 2,
            ops_per_step: 400,
            // The latency bound would trip first in this rig; isolate
            // the throughput criterion.
            p99_bound_ns: 0,
            ..SweepOptions::default()
        };
        let mut seen = 0;
        let outcome = run_sweep(&trace, &store, "w", &opts, Some(&mut |_| seen += 1)).unwrap();
        assert_eq!(seen, outcome.steps.len(), "progress fired per step");
        assert!(
            outcome.steps.iter().any(|s| !s.sustainable),
            "ladder never hit saturation"
        );
        let knee = outcome.knee_step().expect("2k must sustain");
        assert!(
            knee.offered >= 4_000.0 && knee.offered < 8_000.0,
            "knee at {} ops/s, expected in [4k, 8k)",
            knee.offered
        );
        // Bisection ran: some step sits strictly between ladder rungs.
        assert!(
            outcome
                .steps
                .iter()
                .any(|s| s.offered > 4_000.0 && s.offered < 8_000.0),
            "no refinement step inside the bracket"
        );
    }

    #[test]
    fn same_seed_reproduces_the_knee() {
        let trace = put_trace(2_000, 64);
        let opts = SweepOptions {
            rates: vec![2_000.0, 4_000.0, 8_000.0],
            ops_per_step: 300,
            seed: 42,
            ..SweepOptions::default()
        };
        let a = run_sweep(&trace, &MemStore::new(), "w", &opts, None).unwrap();
        let b = run_sweep(&trace, &MemStore::new(), "w", &opts, None).unwrap();
        assert_eq!(a.knee, b.knee);
        assert_eq!(
            a.knee_step().map(|s| s.offered),
            b.knee_step().map(|s| s.offered)
        );
    }

    #[test]
    fn bad_ladder_options_are_rejected() {
        let trace = put_trace(10, 4);
        let store = MemStore::new();
        for opts in [
            SweepOptions {
                growth: 1.0,
                ..SweepOptions::default()
            },
            SweepOptions {
                start_rate: 0.0,
                ..SweepOptions::default()
            },
            SweepOptions {
                start_rate: 1_000.0,
                max_rate: 10.0,
                ..SweepOptions::default()
            },
        ] {
            assert!(run_sweep(&trace, &store, "w", &opts, None).is_err());
        }
    }
}
