//! Property-based tests: analysis metrics vs naive oracles.

use proptest::prelude::*;

use gadget_analysis::{
    ks_test, rank_normalize, shuffled_keys, stack_distances, ttl_distribution, unique_sequences,
    wasserstein_distance, working_set_series,
};

/// Naive O(n²) stack-distance oracle.
fn naive_stack_distances(keys: &[u128]) -> (Vec<u64>, u64) {
    let mut out = Vec::new();
    let mut cold = 0;
    for (i, &k) in keys.iter().enumerate() {
        match keys[..i].iter().rposition(|&p| p == k) {
            Some(prev) => {
                let mut unique = std::collections::HashSet::new();
                for &mid in &keys[prev + 1..i] {
                    unique.insert(mid);
                }
                out.push(unique.len() as u64);
            }
            None => cold += 1,
        }
    }
    (out, cold)
}

/// Naive working-set oracle: at step i, count keys whose first access is
/// <= i and last access is >= i.
fn naive_working_set(keys: &[u128], at: usize) -> u64 {
    let mut active = std::collections::HashSet::new();
    for (i, &k) in keys.iter().enumerate() {
        let first = keys.iter().position(|&p| p == k).unwrap();
        let last = keys.iter().rposition(|&p| p == k).unwrap();
        if first <= at && last >= at {
            active.insert(k);
        }
        let _ = i;
    }
    active.len() as u64
}

fn small_keys() -> impl Strategy<Value = Vec<u128>> {
    proptest::collection::vec(0u128..12, 1..120)
}

proptest! {
    #[test]
    fn stack_distance_matches_naive_oracle(keys in small_keys()) {
        let fast = stack_distances(&keys, None);
        let (naive, cold) = naive_stack_distances(&keys);
        prop_assert_eq!(fast.distances, naive);
        prop_assert_eq!(fast.cold_accesses, cold);
    }

    #[test]
    fn working_set_matches_naive_oracle(keys in small_keys()) {
        let series = working_set_series(&keys, 10);
        for point in series {
            prop_assert_eq!(
                point.size,
                naive_working_set(&keys, point.op_index as usize),
                "at op {}", point.op_index
            );
        }
    }

    #[test]
    fn ttl_bounds(keys in small_keys()) {
        let summary = ttl_distribution(&keys, None);
        // One TTL per distinct key; each TTL is bounded by trace length.
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(summary.ttls.len(), distinct.len());
        for &t in &summary.ttls {
            prop_assert!(t < keys.len() as u64);
        }
        prop_assert!(summary.percentile(100.0) == summary.max());
    }

    #[test]
    fn sequence_counts_are_sane(keys in small_keys()) {
        let counts = unique_sequences(&keys, 4);
        for (l, &c) in counts.counts.iter().enumerate() {
            let windows = keys.len().saturating_sub(l) as u64;
            prop_assert!(c <= windows, "len {} count {c} > windows {windows}", l + 1);
            if windows > 0 {
                prop_assert!(c >= 1);
            }
        }
    }

    #[test]
    fn shuffle_preserves_popularity(keys in small_keys(), seed in any::<u64>()) {
        let shuffled = shuffled_keys(&keys, seed);
        let mut a = keys.clone();
        let mut b = shuffled;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ks_statistic_is_bounded(
        a in proptest::collection::vec(-1000.0f64..1000.0, 1..100),
        b in proptest::collection::vec(-1000.0f64..1000.0, 1..100),
    ) {
        let r = ks_test(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.d));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // Self-comparison never rejects.
        let same = ks_test(&a, &a);
        prop_assert!(same.d < 1e-12);
    }

    #[test]
    fn wasserstein_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(-100.0f64..100.0, 1..60),
        b in proptest::collection::vec(-100.0f64..100.0, 1..60),
    ) {
        let ab = wasserstein_distance(&a, &b);
        let ba = wasserstein_distance(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(wasserstein_distance(&a, &a) < 1e-9);
    }

    #[test]
    fn rank_normalize_outputs_valid_ranks(keys in small_keys()) {
        let ranks = rank_normalize(&keys);
        prop_assert_eq!(ranks.len(), keys.len());
        for &r in &ranks {
            prop_assert!((0.0..1.0).contains(&r));
        }
        // Order-preserving on key values.
        for (i, &ka) in keys.iter().enumerate() {
            for (j, &kb) in keys.iter().enumerate() {
                if ka < kb {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }
}
