//! Key time-to-live (TTL) distributions.
//!
//! The paper defines TTL as the number of time units (steps) between the
//! first and the last access of a key in the state access stream
//! (§3.2.3). Short TTLs mean ephemeral state; Table 3 compares TTL
//! percentiles between real and YCSB traces.

use serde::{Deserialize, Serialize};

/// TTL distribution summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TtlSummary {
    /// TTLs (in operation steps), sorted ascending; one per distinct key.
    pub ttls: Vec<u64>,
    /// Number of keys accessed exactly once (TTL 0).
    pub accessed_once: u64,
}

impl TtlSummary {
    /// Percentile in `[0, 100]` by nearest-rank.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile(&self.ttls, p)
    }

    /// Maximum TTL.
    pub fn max(&self) -> u64 {
        self.ttls.last().copied().unwrap_or(0)
    }

    /// Fraction of keys accessed exactly once.
    pub fn accessed_once_fraction(&self) -> f64 {
        if self.ttls.is_empty() {
            return 0.0;
        }
        self.accessed_once as f64 / self.ttls.len() as f64
    }
}

/// Nearest-rank percentile of a sorted slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Computes TTLs (in steps) for all keys, or only for `sample` if given
/// (the paper's Table 3 samples 1K random keys).
pub fn ttl_distribution(keys: &[u128], sample: Option<&[u128]>) -> TtlSummary {
    let sample_set: Option<std::collections::HashSet<u128>> =
        sample.map(|s| s.iter().copied().collect());
    let mut first = std::collections::HashMap::new();
    let mut last = std::collections::HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        if sample_set.as_ref().is_some_and(|s| !s.contains(&k)) {
            continue;
        }
        first.entry(k).or_insert(i as u64);
        last.insert(k, i as u64);
    }
    let mut ttls: Vec<u64> = first.iter().map(|(k, &f)| last[k] - f).collect();
    ttls.sort_unstable();
    let accessed_once = ttls.iter().filter(|&&t| t == 0).count() as u64;
    TtlSummary {
        ttls,
        accessed_once,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_keys_have_zero_ttl() {
        let s = ttl_distribution(&[1, 2, 3], None);
        assert_eq!(s.ttls, vec![0, 0, 0]);
        assert_eq!(s.accessed_once, 3);
        assert_eq!(s.accessed_once_fraction(), 1.0);
    }

    #[test]
    fn ttl_spans_first_to_last() {
        // Key 1 at steps 0 and 4 → TTL 4; key 2 at steps 1..3 → TTL 2.
        let s = ttl_distribution(&[1, 2, 2, 2, 1], None);
        assert_eq!(s.ttls, vec![2, 4]);
        assert_eq!(s.max(), 4);
        assert_eq!(s.accessed_once, 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 50.0), 5);
        assert_eq!(percentile(&sorted, 90.0), 9);
        assert_eq!(percentile(&sorted, 99.9), 10);
        assert_eq!(percentile(&sorted, 0.1), 1);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn sampling_restricts_keys() {
        let s = ttl_distribution(&[1, 2, 1, 2, 3], Some(&[2]));
        assert_eq!(s.ttls, vec![2]);
    }

    #[test]
    fn ephemeral_vs_longlived() {
        // Bursty keys die fast; one key spans the whole trace.
        let mut keys: Vec<u128> = (0..1_000).map(|i| 1 + (i / 10) as u128).collect();
        keys.insert(0, 0);
        keys.push(0);
        let s = ttl_distribution(&keys, None);
        assert_eq!(s.percentile(50.0), 9);
        assert_eq!(s.max(), keys.len() as u64 - 1);
    }
}
