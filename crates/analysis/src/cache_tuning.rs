//! Automatic cache sizing from stack-distance profiles.
//!
//! The paper's §8 points out that its temporal-locality analysis "could be
//! used to provide automatic cache size tuning in state stores": an LRU
//! cache of capacity `c` misses exactly the accesses whose stack distance
//! is `>= c` (plus cold misses), so the stack-distance histogram *is* the
//! miss-ratio curve. This module materializes that curve and recommends
//! the smallest capacity meeting a target hit rate.

use serde::{Deserialize, Serialize};

use crate::stack_distance::StackDistanceSummary;

/// One point of the miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissRatioPoint {
    /// Cache capacity in keys.
    pub capacity: u64,
    /// Fraction of accesses that miss an LRU cache of that capacity.
    pub miss_ratio: f64,
}

/// The miss-ratio curve of a trace, evaluated at the given capacities.
pub fn miss_ratio_curve(summary: &StackDistanceSummary, capacities: &[u64]) -> Vec<MissRatioPoint> {
    capacities
        .iter()
        .map(|&capacity| MissRatioPoint {
            capacity,
            miss_ratio: summary.miss_ratio(capacity),
        })
        .collect()
}

/// Recommends the smallest LRU capacity (in keys) whose hit rate reaches
/// `target_hit_rate`, or `None` if even a cache holding every re-accessed
/// key cannot reach it (cold misses put a floor under the miss ratio).
pub fn recommend_capacity(summary: &StackDistanceSummary, target_hit_rate: f64) -> Option<u64> {
    let target_miss = 1.0 - target_hit_rate;
    // The best any capacity can do is the cold-miss floor.
    let max_capacity = summary.distances.iter().max().copied().unwrap_or(0) + 1;
    if summary.miss_ratio(max_capacity) > target_miss {
        return None;
    }
    // Binary search the smallest adequate capacity: miss_ratio is
    // non-increasing in capacity.
    let (mut lo, mut hi) = (0u64, max_capacity);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if summary.miss_ratio(mid) <= target_miss {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack_distance::stack_distances;

    fn looping_trace(n_keys: u128, repeats: usize) -> Vec<u128> {
        (0..n_keys as usize * repeats)
            .map(|i| (i as u128) % n_keys)
            .collect()
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let keys = looping_trace(100, 20);
        let summary = stack_distances(&keys, None);
        let caps: Vec<u64> = (0..=120).step_by(10).collect();
        let curve = miss_ratio_curve(&summary, &caps);
        for w in curve.windows(2) {
            assert!(w[0].miss_ratio >= w[1].miss_ratio);
        }
    }

    #[test]
    fn recommendation_matches_loop_size() {
        // A strict loop over 100 keys needs a 100-key cache to hit at all.
        let keys = looping_trace(100, 50);
        let summary = stack_distances(&keys, None);
        let cap = recommend_capacity(&summary, 0.9).expect("reachable");
        assert_eq!(cap, 100);
        // The recommended capacity actually meets the target.
        assert!(1.0 - summary.miss_ratio(cap) >= 0.9);
        // One key less does not.
        assert!(1.0 - summary.miss_ratio(cap - 1) < 0.9);
    }

    #[test]
    fn hot_set_needs_small_cache() {
        // 90% of accesses loop over 8 hot keys; rest scan a long tail.
        let mut keys = Vec::new();
        for i in 0..10_000usize {
            if i % 10 == 9 {
                keys.push(1_000 + i as u128); // Cold tail key.
            } else {
                keys.push((i % 8) as u128);
            }
        }
        let summary = stack_distances(&keys, None);
        let cap = recommend_capacity(&summary, 0.85).expect("reachable");
        assert!(cap <= 16, "hot set mis-sized: {cap}");
    }

    #[test]
    fn unreachable_targets_return_none() {
        // Every access is cold: no cache helps.
        let keys: Vec<u128> = (0..1_000).collect();
        let summary = stack_distances(&keys, None);
        assert_eq!(recommend_capacity(&summary, 0.5), None);
    }
}
