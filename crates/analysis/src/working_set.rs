//! Working-set-size evolution.
//!
//! The paper defines the *working key set* at a point in time as the set
//! of keys that can still be accessed in the future (§3.2.3): a key is
//! active from its first to its last access. The series below samples the
//! active-key count every `step` operations, which is how Figs. 5 (bottom)
//! and 6 are drawn.

use serde::{Deserialize, Serialize};

/// One sample of the working-set series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkingSetPoint {
    /// Operation index of the sample.
    pub op_index: u64,
    /// Number of active keys at that point.
    pub size: u64,
}

/// Computes the working-set-size series, sampled every `step` operations
/// (the paper samples every 100).
pub fn working_set_series(keys: &[u128], step: usize) -> Vec<WorkingSetPoint> {
    let step = step.max(1);
    let mut first = std::collections::HashMap::new();
    let mut last = std::collections::HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        first.entry(k).or_insert(i);
        last.insert(k, i);
    }
    // Delta array: +1 when a key becomes active, -1 right after it dies.
    let mut delta = vec![0i64; keys.len() + 1];
    for (&k, &f) in &first {
        delta[f] += 1;
        delta[last[&k] + 1] -= 1;
    }
    let mut out = Vec::with_capacity(keys.len() / step + 1);
    let mut active = 0i64;
    for (i, d) in delta.iter().enumerate().take(keys.len()) {
        active += d;
        if i % step == 0 {
            out.push(WorkingSetPoint {
                op_index: i as u64,
                size: active as u64,
            });
        }
    }
    out
}

/// Maximum working-set size over the series.
pub fn peak(series: &[WorkingSetPoint]) -> u64 {
    series.iter().map(|p| p.size).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_key_has_working_set_one() {
        let keys = vec![5u128; 500];
        let series = working_set_series(&keys, 100);
        assert!(series.iter().all(|p| p.size == 1));
    }

    #[test]
    fn growing_then_dying_keyspace() {
        // Keys 0..500 accessed in order, then again in order: the working
        // set grows through the first half (keys stay active awaiting
        // their second access) and shrinks through the second half as
        // keys see their final access.
        let mut keys: Vec<u128> = (0..500).collect();
        keys.extend(0..500);
        let series = working_set_series(&keys, 100);
        for w in series[..5].windows(2) {
            assert!(w[0].size <= w[1].size, "first half must grow");
        }
        for w in series[5..].windows(2) {
            assert!(w[0].size >= w[1].size, "second half must shrink");
        }
        assert_eq!(peak(&series), 500);
    }

    #[test]
    fn ephemeral_keys_keep_working_set_small() {
        // Each key is accessed in a burst of 10 then never again.
        let keys: Vec<u128> = (0..10_000).map(|i| (i / 10) as u128).collect();
        let series = working_set_series(&keys, 100);
        assert!(peak(&series) <= 2, "peak {}", peak(&series));
    }

    #[test]
    fn sampling_step_controls_resolution() {
        let keys: Vec<u128> = (0..1_000).collect();
        assert_eq!(working_set_series(&keys, 100).len(), 10);
        assert_eq!(working_set_series(&keys, 250).len(), 4);
    }

    #[test]
    fn empty_trace() {
        assert!(working_set_series(&[], 100).is_empty());
        assert_eq!(peak(&[]), 0);
    }
}
