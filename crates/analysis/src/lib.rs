//! Trace characterization: the metrics of the paper's §3 and §4.
//!
//! Everything operates on a trace (or a bare key
//! sequence) and is store-agnostic:
//!
//! * [`stack_distance`] — temporal locality via LRU stack distances,
//!   computed with Olken's algorithm over a Fenwick tree (O(n log n));
//! * [`sequences`] — spatial locality via the number of unique key
//!   sequences of bounded length;
//! * [`working_set`] — working-set-size evolution, sampled in fixed steps;
//! * [`ttl`] — per-key time-to-live distributions;
//! * [`stats`] — the two-sample Kolmogorov–Smirnov test and the
//!   Wasserstein-1 distance used to compare key distributions;
//! * [`shuffle`] — the shuffled-trace baseline that preserves key
//!   popularity but destroys ordering (used throughout Figs. 5, 7, 10).

pub mod cache_tuning;
pub mod sequences;
pub mod shuffle;
pub mod stack_distance;
pub mod stats;
pub mod ttl;
pub mod working_set;

pub use cache_tuning::{miss_ratio_curve, recommend_capacity, MissRatioPoint};
pub use sequences::{unique_sequences, SequenceCounts};
pub use shuffle::shuffled_keys;
pub use stack_distance::{stack_distances, StackDistanceSummary};
pub use stats::{ks_test, wasserstein_distance, KsResult};
pub use ttl::{ttl_distribution, TtlSummary};
pub use working_set::{working_set_series, WorkingSetPoint};

use gadget_types::{StateKey, Trace};

/// Extracts the packed key sequence of a trace (the input most analyses
/// consume).
pub fn key_sequence(trace: &Trace) -> Vec<u128> {
    trace.iter().map(|a| a.key.as_u128()).collect()
}

/// Maps a key sequence onto dense indices `0..#distinct` in first-seen
/// order. Used to put two traces on a comparable domain for the KS test
/// (paper §4: "we map both empirical distributions to the same domain").
pub fn densify(keys: &[u128]) -> Vec<u64> {
    let mut ids = std::collections::HashMap::new();
    keys.iter()
        .map(|k| {
            let next = ids.len() as u64;
            *ids.entry(*k).or_insert(next)
        })
        .collect()
}

/// Maps a key sequence onto normalized ranks in `[0, 1)`: each key is
/// replaced by `rank / #distinct`, where ranks order the distinct keys by
/// value. This puts two samples from *different key universes* (e.g.
/// event keys vs window state keys) onto the paper's common domain
/// `[0, #distinct_keys)` (§4) so their distributions can be compared with
/// the KS test: a stream that preserves the input key distribution maps
/// to the identical rank distribution.
pub fn rank_normalize(keys: &[u128]) -> Vec<f64> {
    let mut distinct: Vec<u128> = keys.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let n = distinct.len().max(1) as f64;
    keys.iter()
        .map(|k| {
            let rank = distinct.binary_search(k).expect("key present") as f64;
            rank / n
        })
        .collect()
}

/// Convenience: the event-key sequence of a trace's accesses projected to
/// their key groups (used when comparing against input key distributions).
pub fn group_sequence(trace: &Trace) -> Vec<u64> {
    trace.iter().map(|a| a.key.group).collect()
}

/// Re-exported for tests and benches that build small traces by hand.
pub fn pack(key: StateKey) -> u128 {
    key.as_u128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::{StateAccess, StateKey};

    #[test]
    fn rank_normalize_is_distribution_preserving() {
        // Identical multisets over different universes map identically.
        let a = rank_normalize(&[10, 20, 10, 30]);
        let b = rank_normalize(&[1_000_000, 2_000_000, 1_000_000, 3_000_000]);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn key_sequence_and_densify() {
        let mut t = Trace::new();
        t.push(StateAccess::get(StateKey::plain(100), 0));
        t.push(StateAccess::get(StateKey::plain(7), 1));
        t.push(StateAccess::get(StateKey::plain(100), 2));
        let seq = key_sequence(&t);
        assert_eq!(seq.len(), 3);
        assert_eq!(densify(&seq), vec![0, 1, 0]);
    }
}
