//! Temporal locality: LRU stack distances.
//!
//! The stack distance of an access is the number of *unique* keys touched
//! since the previous access to the same key (paper §3.2.3, the classic
//! Mattson metric). Small distances mean the workload re-touches recent
//! keys, so even a small cache absorbs it; the distance histogram directly
//! yields the miss ratio of an LRU cache of any size.
//!
//! Implementation: Olken's algorithm. A Fenwick (binary indexed) tree over
//! access positions holds a `1` at each key's most recent position;
//! the distance of a re-access is the count of ones strictly after the
//! key's previous position.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Fenwick tree over `n` positions.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Stack-distance analysis result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackDistanceSummary {
    /// One distance per re-access (first accesses are cold and excluded).
    pub distances: Vec<u64>,
    /// Number of cold (first-time) accesses.
    pub cold_accesses: u64,
    /// Mean distance over re-accesses (0 if none).
    pub mean: f64,
}

impl StackDistanceSummary {
    /// Histogram of distances with the given bucket width.
    pub fn histogram(&self, bucket: u64) -> Vec<(u64, u64)> {
        let bucket = bucket.max(1);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &d in &self.distances {
            *counts.entry(d / bucket * bucket).or_insert(0) += 1;
        }
        let mut out: Vec<(u64, u64)> = counts.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Estimated LRU miss ratio for a cache holding `capacity` keys: the
    /// fraction of accesses (cold included) with distance >= capacity.
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        let total = self.distances.len() as u64 + self.cold_accesses;
        if total == 0 {
            return 0.0;
        }
        let misses =
            self.distances.iter().filter(|&&d| d >= capacity).count() as u64 + self.cold_accesses;
        misses as f64 / total as f64
    }
}

/// Computes LRU stack distances for a key sequence.
///
/// `sample` optionally restricts the reported distances to re-accesses of
/// the given keys (the paper's Fig. 7 uses 1K random keys); pass `None`
/// for all keys. All keys still participate in the LRU stack either way.
pub fn stack_distances(keys: &[u128], sample: Option<&[u128]>) -> StackDistanceSummary {
    let sample_set: Option<std::collections::HashSet<u128>> =
        sample.map(|s| s.iter().copied().collect());
    let mut fenwick = Fenwick::new(keys.len());
    let mut last_pos: HashMap<u128, usize> = HashMap::new();
    let mut distances = Vec::new();
    let mut cold = 0u64;

    for (pos, &key) in keys.iter().enumerate() {
        let in_sample = sample_set.as_ref().is_none_or(|s| s.contains(&key));
        match last_pos.get(&key).copied() {
            Some(prev) => {
                // Unique keys accessed strictly between prev and pos.
                let d = fenwick.prefix(pos) - fenwick.prefix(prev);
                if in_sample {
                    distances.push(d as u64);
                }
                fenwick.add(prev, -1);
            }
            None => {
                if in_sample {
                    cold += 1;
                }
            }
        }
        fenwick.add(pos, 1);
        last_pos.insert(key, pos);
    }

    let mean = if distances.is_empty() {
        0.0
    } else {
        distances.iter().sum::<u64>() as f64 / distances.len() as f64
    };
    StackDistanceSummary {
        distances,
        cold_accesses: cold,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dists(keys: &[u128]) -> Vec<u64> {
        stack_distances(keys, None).distances
    }

    #[test]
    fn immediate_reaccess_has_distance_zero() {
        assert_eq!(dists(&[1, 1, 1]), vec![0, 0]);
    }

    #[test]
    fn classic_example() {
        // a b c a : distance of the second 'a' is 2 (b and c in between).
        assert_eq!(dists(&[1, 2, 3, 1]), vec![2]);
        // a b b a : b=0, a=1 (only b in between).
        assert_eq!(dists(&[1, 2, 2, 1]), vec![0, 1]);
    }

    #[test]
    fn repeated_intermediate_keys_count_once() {
        // a b b b a : unique keys between the two a's = {b} = 1.
        assert_eq!(dists(&[1, 2, 2, 2, 1]), vec![0, 0, 1]);
    }

    #[test]
    fn cold_accesses_counted() {
        let s = stack_distances(&[1, 2, 3], None);
        assert_eq!(s.cold_accesses, 3);
        assert!(s.distances.is_empty());
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn sampling_restricts_reporting_not_the_stack() {
        let keys = [1u128, 2, 3, 1, 2];
        let s = stack_distances(&keys, Some(&[2]));
        // Only key 2's re-access (distance 2: keys 3 and 1 in between).
        assert_eq!(s.distances, vec![2]);
        assert_eq!(s.cold_accesses, 1); // Key 2's first access.
    }

    #[test]
    fn miss_ratio_monotone_in_capacity() {
        let keys: Vec<u128> = (0..1_000u128).map(|i| i % 50).collect();
        let s = stack_distances(&keys, None);
        let m1 = s.miss_ratio(10);
        let m2 = s.miss_ratio(50);
        let m3 = s.miss_ratio(100);
        assert!(m1 >= m2 && m2 >= m3);
        // A cache holding all 50 keys only misses the 50 cold accesses.
        assert!((s.miss_ratio(51) - 50.0 / 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_scan_has_max_distances() {
        // Cycling over n keys gives every re-access distance n-1.
        let keys: Vec<u128> = (0..300u128).map(|i| i % 100).collect();
        let s = stack_distances(&keys, None);
        assert!(s.distances.iter().all(|&d| d == 99));
    }

    #[test]
    fn histogram_buckets() {
        let keys: Vec<u128> = (0..300u128).map(|i| i % 100).collect();
        let s = stack_distances(&keys, None);
        let h = s.histogram(10);
        assert_eq!(h, vec![(90, 200)]);
    }
}
