//! Spatial locality: unique key sequences.
//!
//! The paper (§3.2.3) quantifies spatial locality of a state access stream
//! w.r.t. a length `ℓ` as the number of *unique key sequences* of length up
//! to `ℓ` occurring in the stream. A trace with strong spatial locality
//! repeats the same short key sequences over and over, so it contains far
//! fewer unique sequences than a shuffled trace with the same key
//! popularity.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Unique-sequence counts per length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceCounts {
    /// `counts[l-1]` = number of unique sequences of exactly length `l`.
    pub counts: Vec<u64>,
}

impl SequenceCounts {
    /// Total unique sequences across all lengths.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Counts unique key sequences of lengths `1..=max_len`.
///
/// Sequences are contiguous windows of the key sequence, compared by a
/// 128-bit rolling hash (collisions are negligible at trace scale, and
/// identical methodology is applied to every trace being compared).
pub fn unique_sequences(keys: &[u128], max_len: usize) -> SequenceCounts {
    let max_len = max_len.max(1);
    let mut counts = Vec::with_capacity(max_len);
    for l in 1..=max_len {
        if keys.len() < l {
            counts.push(0);
            continue;
        }
        let mut seen: HashSet<u128> = HashSet::new();
        for window in keys.windows(l) {
            let mut h: u128 = 0xcbf2_9ce4_8422_2325_8422_2325;
            for &k in window {
                h ^= k;
                h = h.wrapping_mul(0x1000_0000_01b3_0000_01b3);
                h = h.rotate_left(29);
            }
            seen.insert(h);
        }
        counts.push(seen.len() as u64);
    }
    SequenceCounts { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_has_one_sequence_per_length() {
        let keys = vec![7u128; 100];
        let c = unique_sequences(&keys, 5);
        assert_eq!(c.counts, vec![1, 1, 1, 1, 1]);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn repeating_pattern_bounds_sequences() {
        // Pattern a b a b …: length-2 windows are {ab, ba}.
        let keys: Vec<u128> = (0..100).map(|i| (i % 2) as u128).collect();
        let c = unique_sequences(&keys, 3);
        assert_eq!(c.counts[0], 2);
        assert_eq!(c.counts[1], 2);
        assert_eq!(c.counts[2], 2); // {aba, bab}.
    }

    #[test]
    fn all_distinct_keys_maximize_sequences() {
        let keys: Vec<u128> = (0..50).collect();
        let c = unique_sequences(&keys, 3);
        assert_eq!(c.counts[0], 50);
        assert_eq!(c.counts[1], 49);
        assert_eq!(c.counts[2], 48);
    }

    #[test]
    fn short_streams_yield_zero_for_long_windows() {
        let keys = vec![1u128, 2];
        let c = unique_sequences(&keys, 5);
        assert_eq!(c.counts, vec![2, 1, 0, 0, 0]);
    }

    #[test]
    fn locality_reduces_sequence_count_vs_shuffle() {
        // A looping trace has far fewer sequences than its shuffle.
        let keys: Vec<u128> = (0..5_000).map(|i| (i % 10) as u128).collect();
        let local = unique_sequences(&keys, 5).total();
        let shuffled = crate::shuffle::shuffled_keys(&keys, 1);
        let random = unique_sequences(&shuffled, 5).total();
        assert!(local * 10 < random, "looping {local} vs shuffled {random}");
    }
}
