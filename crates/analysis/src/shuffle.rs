//! The shuffled-trace baseline.
//!
//! A random permutation of a trace preserves every key's popularity but
//! destroys ordering, so comparing a locality metric between a trace and
//! its shuffle isolates the contribution of *ordering* (paper Figs. 5, 7,
//! 10 plot both).

use rand::seq::SliceRandom;

use gadget_distrib::seeded_rng;

/// Returns a seeded random permutation of `keys`.
pub fn shuffled_keys(keys: &[u128], seed: u64) -> Vec<u128> {
    let mut out = keys.to_vec();
    let mut rng = seeded_rng(seed);
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_multiset() {
        let keys: Vec<u128> = (0..1_000).map(|i| (i % 37) as u128).collect();
        let mut a = keys.clone();
        let mut b = shuffled_keys(&keys, 5);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn actually_permutes() {
        let keys: Vec<u128> = (0..1_000).collect();
        assert_ne!(shuffled_keys(&keys, 5), keys);
    }

    #[test]
    fn deterministic_per_seed() {
        let keys: Vec<u128> = (0..100).collect();
        assert_eq!(shuffled_keys(&keys, 9), shuffled_keys(&keys, 9));
        assert_ne!(shuffled_keys(&keys, 9), shuffled_keys(&keys, 10));
    }
}
