//! Statistical distance measures between key distributions.
//!
//! The paper uses the two-sample Kolmogorov–Smirnov test (Table 2, §4) to
//! check whether a state stream preserves the input key distribution, and
//! the Wasserstein-1 metric to quantify how far apart two empirical key
//! distributions are.

use serde::{Deserialize, Serialize};

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic `D = sup |F1 - F2|`.
    pub d: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// First sample size.
    pub n: usize,
    /// Second sample size.
    pub m: usize,
}

impl KsResult {
    /// Whether the null hypothesis (same distribution) is rejected at
    /// significance level `alpha`.
    pub fn rejects(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test over real-valued samples.
///
/// Uses the asymptotic Kolmogorov distribution for the p-value, which is
/// accurate for the trace-scale sample sizes used here.
pub fn ks_test(sample1: &[f64], sample2: &[f64]) -> KsResult {
    let (n, m) = (sample1.len(), sample2.len());
    if n == 0 || m == 0 {
        return KsResult {
            d: 0.0,
            p_value: 1.0,
            n,
            m,
        };
    }
    let mut a = sample1.to_vec();
    let mut b = sample2.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in samples"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in samples"));

    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let x = a[i].min(b[j]);
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n as f64;
        let f2 = j as f64 / m as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p_value = kolmogorov_q(lambda);
    KsResult { d, p_value, n, m }
}

/// The Kolmogorov survival function `Q(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-10 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Wasserstein-1 (earth mover's) distance between two empirical
/// distributions over the reals.
pub fn wasserstein_distance(sample1: &[f64], sample2: &[f64]) -> f64 {
    if sample1.is_empty() || sample2.is_empty() {
        return 0.0;
    }
    let mut a = sample1.to_vec();
    let mut b = sample2.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in samples"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in samples"));

    // Integrate |F1(x) - F2(x)| dx over the merged support.
    let mut points: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    points.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    points.dedup();

    let mut dist = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    for w in points.windows(2) {
        while i < a.len() && a[i] <= w[0] {
            i += 1;
        }
        while j < b.len() && b[j] <= w[0] {
            j += 1;
        }
        let f1 = i as f64 / a.len() as f64;
        let f2 = j as f64 / b.len() as f64;
        dist += (f1 - f2).abs() * (w[1] - w[0]);
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_samples_pass() {
        let s: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        let r = ks_test(&s, &s);
        assert!(r.d < 1e-12);
        assert!(r.p_value > 0.999);
        assert!(!r.rejects(0.001));
    }

    #[test]
    fn disjoint_samples_reject() {
        let a: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1_000).map(|i| (i + 10_000) as f64).collect();
        let r = ks_test(&a, &b);
        assert!((r.d - 1.0).abs() < 1e-12);
        assert!(r.rejects(0.001));
    }

    #[test]
    fn same_distribution_different_draws_pass() {
        let mut rng = gadget_distrib::seeded_rng(3);
        let a: Vec<f64> = (0..5_000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..5_000).map(|_| rng.gen::<f64>()).collect();
        let r = ks_test(&a, &b);
        assert!(!r.rejects(0.001), "d={} p={}", r.d, r.p_value);
    }

    #[test]
    fn shifted_distribution_rejects() {
        let mut rng = gadget_distrib::seeded_rng(4);
        let a: Vec<f64> = (0..5_000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..5_000).map(|_| rng.gen::<f64>() + 0.2).collect();
        assert!(ks_test(&a, &b).rejects(0.001));
    }

    #[test]
    fn wasserstein_of_shift_equals_shift() {
        let a: Vec<f64> = (0..1_000).map(|i| i as f64 / 1_000.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 5.0).collect();
        let w = wasserstein_distance(&a, &b);
        assert!((w - 5.0).abs() < 0.01, "w={w}");
        assert!(wasserstein_distance(&a, &a) < 1e-12);
    }

    #[test]
    fn empty_samples_are_neutral() {
        assert_eq!(ks_test(&[], &[1.0]).p_value, 1.0);
        assert_eq!(wasserstein_distance(&[], &[1.0]), 0.0);
    }
}
