//! Compaction: picking and executing merges of SSTables.
//!
//! Three triggers, in priority order:
//!
//! 1. **L0 file count** — when L0 accumulates `l0_compaction_trigger`
//!    files, all of L0 is merged with the overlapping part of L1.
//! 2. **Delete persistence (Lethe / FADE)** — when the store runs in Lethe
//!    mode, any file whose tombstones are older than the configured
//!    threshold (in operations) becomes a priority candidate, ensuring
//!    deleted state is physically purged promptly.
//! 3. **Level size** — when level *i* exceeds its size target, its oldest
//!    file is merged into level *i+1*.
//!
//! Execution is a streaming k-way merge ordered by `(key, age)`: for each
//! key the newest entry wins, merge-operand stacks are folded onto the
//! first full value or tombstone beneath them, and tombstones are dropped
//! once the output level is the bottom of the tree for that key range.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;

use crate::cache::BlockCache;
use crate::config::LsmConfig;
use crate::memtable::{fold_merge, FlushEntry};
use crate::sstable::{TableHandle, TableIterator, TableWriter};
use crate::version::{table_path, Version};

/// A planned compaction.
#[derive(Debug)]
pub struct CompactionJob {
    /// Level the inputs start at (outputs land on `level + 1`, except that
    /// an L0 job may also include L1 inputs).
    pub level: usize,
    /// Input tables ordered newest-first (age rank order).
    pub inputs: Vec<Arc<TableHandle>>,
    /// The output level.
    pub output_level: usize,
    /// Whether tombstones may be dropped (no deeper data can exist for the
    /// job's key range).
    pub bottom_most: bool,
    /// Why this job was scheduled (for counters and tests).
    pub reason: CompactionReason,
}

/// Why a compaction was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionReason {
    /// L0 reached its file-count trigger.
    L0FileCount,
    /// Lethe delete-persistence deadline.
    DeletePersistence,
    /// A level exceeded its size target.
    LevelSize,
}

/// Chooses the next compaction, if any is needed.
///
/// `current_seq` is the store's global operation sequence, used to age
/// tombstones for the Lethe policy.
pub fn pick_compaction(
    version: &Version,
    config: &LsmConfig,
    current_seq: u64,
) -> Option<CompactionJob> {
    let num_levels = config.num_levels;

    // Trigger 1: L0 file count.
    if version.level_files(0) >= config.l0_compaction_trigger {
        let mut inputs: Vec<Arc<TableHandle>> = version.levels[0].clone(); // Newest-first already.
        let (lo, hi) = key_range(&inputs);
        let mut l1 = version.overlapping(1, &lo, &hi);
        l1.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        inputs.extend(l1);
        return Some(CompactionJob {
            level: 0,
            bottom_most: is_bottom_most(version, 1, &lo, &hi),
            inputs,
            output_level: 1,
            reason: CompactionReason::L0FileCount,
        });
    }

    // Trigger 2: Lethe delete persistence.
    if let Some(policy) = &config.lethe {
        for level in 1..num_levels - 1 {
            for table in &version.levels[level] {
                if table.tombstones > 0
                    && current_seq.saturating_sub(table.creation_seq)
                        >= policy.delete_persistence_ops
                {
                    return Some(make_level_job(
                        version,
                        level,
                        table.clone(),
                        CompactionReason::DeletePersistence,
                    ));
                }
            }
        }
    }

    // Trigger 3: level size.
    for level in 1..num_levels - 1 {
        if version.level_bytes(level) > config.level_target_bytes(level) {
            // Oldest file first keeps the pick fair over time.
            let table = version.levels[level]
                .iter()
                .min_by_key(|t| t.file_no)?
                .clone();
            return Some(make_level_job(
                version,
                level,
                table,
                CompactionReason::LevelSize,
            ));
        }
    }

    None
}

fn make_level_job(
    version: &Version,
    level: usize,
    table: Arc<TableHandle>,
    reason: CompactionReason,
) -> CompactionJob {
    let lo = table.smallest.clone();
    let hi = table.largest.clone();
    let mut inputs = vec![table];
    let mut next = version.overlapping(level + 1, &lo, &hi);
    next.sort_by(|a, b| a.smallest.cmp(&b.smallest));
    inputs.extend(next);
    CompactionJob {
        level,
        bottom_most: is_bottom_most(version, level + 1, &lo, &hi),
        inputs,
        output_level: level + 1,
        reason,
    }
}

/// True if no level deeper than `output_level` holds data overlapping
/// `[lo, hi]`, so tombstones in the output may be dropped.
fn is_bottom_most(version: &Version, output_level: usize, lo: &[u8], hi: &[u8]) -> bool {
    version
        .levels
        .iter()
        .skip(output_level + 1)
        .all(|level| level.iter().all(|t| !t.overlaps(lo, hi)))
}

/// Smallest and largest key across `tables`.
fn key_range(tables: &[Arc<TableHandle>]) -> (Vec<u8>, Vec<u8>) {
    let mut lo = tables[0].smallest.clone();
    let mut hi = tables[0].largest.clone();
    for t in &tables[1..] {
        if t.smallest < lo {
            lo = t.smallest.clone();
        }
        if t.largest > hi {
            hi = t.largest.clone();
        }
    }
    (lo, hi)
}

/// Outcome of executing a compaction.
#[derive(Debug)]
pub struct CompactionOutput {
    /// Newly written tables for the output level.
    pub new_tables: Vec<Arc<TableHandle>>,
    /// Bytes read from input tables.
    pub bytes_read: u64,
    /// Bytes written to output tables.
    pub bytes_written: u64,
    /// Tombstones dropped (only on bottom-most compactions).
    pub tombstones_dropped: u64,
}

struct HeapItem {
    key: Vec<u8>,
    entry: FlushEntry,
    /// Smaller rank = newer data.
    rank: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.rank == other.rank
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so smallest (key, rank) pops first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

/// Executes `job`, writing outputs into `dir` with file numbers drawn from
/// `next_file_no`.
pub fn run_compaction(
    job: &CompactionJob,
    dir: &Path,
    config: &LsmConfig,
    cache: &BlockCache,
    next_file_no: &mut u64,
    creation_seq: u64,
) -> io::Result<CompactionOutput> {
    let mut iters: Vec<TableIterator<'_>> = job.inputs.iter().map(|t| t.iter(cache)).collect();
    let mut heap = BinaryHeap::new();
    for (rank, it) in iters.iter_mut().enumerate() {
        if let Some((key, entry)) = it.next()? {
            heap.push(HeapItem { key, entry, rank });
        }
    }

    let bytes_read: u64 = job.inputs.iter().map(|t| t.size).sum();
    let mut new_tables = Vec::new();
    let mut tombstones_dropped = 0u64;
    let mut writer: Option<TableWriter> = None;
    let mut writer_bytes = 0usize;
    let expected_keys: usize = job
        .inputs
        .iter()
        .map(|t| t.num_entries as usize)
        .sum::<usize>()
        .max(1);
    let mut bytes_written = 0u64;

    // Pops every entry for the next key, newest first, and combines them.
    while let Some(first) = heap.pop() {
        let key = first.key.clone();
        // Collect all versions of `key` (they pop in rank order thanks to
        // the heap ordering), refilling iterators as we drain them.
        let mut versions = vec![first];
        refill(&mut iters, &mut heap, versions.last().unwrap().rank)?;
        while let Some(top) = heap.peek() {
            if top.key != key {
                break;
            }
            let item = heap.pop().expect("peeked");
            refill(&mut iters, &mut heap, item.rank)?;
            versions.push(item);
        }

        let combined = combine_versions(versions, job.bottom_most);
        let out_entry = match combined {
            Combined::Drop => {
                tombstones_dropped += 1;
                continue;
            }
            Combined::Keep(e) => e,
        };

        let w = match writer.as_mut() {
            Some(w) => w,
            None => {
                *next_file_no += 1;
                let path = table_path(dir, job.output_level, *next_file_no);
                writer = Some(TableWriter::create(
                    &path,
                    config.block_bytes,
                    config.bloom_bits_per_key,
                    expected_keys,
                )?);
                writer_bytes = 0;
                writer.as_mut().expect("just created")
            }
        };
        writer_bytes += key.len() + entry_size(&out_entry);
        w.add(&key, &out_entry)?;
        if writer_bytes >= config.target_file_bytes {
            let mut handle = writer
                .take()
                .expect("writer exists")
                .finish(*next_file_no)?;
            handle.creation_seq = creation_seq;
            bytes_written += handle.size;
            new_tables.push(Arc::new(handle));
        }
    }
    if let Some(w) = writer.take() {
        let mut handle = w.finish(*next_file_no)?;
        handle.creation_seq = creation_seq;
        bytes_written += handle.size;
        new_tables.push(Arc::new(handle));
    }

    // The new tables' data is synced by `finish`; their *names* need the
    // directory synced too, or a crash could lose the files entirely.
    if !new_tables.is_empty() {
        gadget_kv::fsync_dir(dir).map_err(io::Error::other)?;
    }

    Ok(CompactionOutput {
        new_tables,
        bytes_read,
        bytes_written,
        tombstones_dropped,
    })
}

fn refill(
    iters: &mut [TableIterator<'_>],
    heap: &mut BinaryHeap<HeapItem>,
    rank: usize,
) -> io::Result<()> {
    if let Some((key, entry)) = iters[rank].next()? {
        heap.push(HeapItem { key, entry, rank });
    }
    Ok(())
}

enum Combined {
    Keep(FlushEntry),
    Drop,
}

/// Combines all versions of one key (newest first) into the output entry.
fn combine_versions(versions: Vec<HeapItem>, bottom_most: bool) -> Combined {
    let mut pending: Vec<Bytes> = Vec::new();
    for item in versions {
        match item.entry {
            FlushEntry::Put(v) => {
                return Combined::Keep(FlushEntry::Put(fold_merge(Some(&v), &pending)));
            }
            FlushEntry::Delete => {
                if !pending.is_empty() {
                    // Merge stack over a tombstone rebuilds from empty; the
                    // result is a full value that shadows deeper data.
                    return Combined::Keep(FlushEntry::Put(fold_merge(None, &pending)));
                }
                return if bottom_most {
                    Combined::Drop
                } else {
                    Combined::Keep(FlushEntry::Delete)
                };
            }
            FlushEntry::Merge(mut ops) => {
                // `ops` is older than `pending` collected so far.
                ops.append(&mut pending);
                pending = ops;
            }
        }
    }
    // Only merge operands were found.
    if bottom_most {
        Combined::Keep(FlushEntry::Put(fold_merge(None, &pending)))
    } else {
        Combined::Keep(FlushEntry::Merge(pending))
    }
}

fn entry_size(e: &FlushEntry) -> usize {
    match e {
        FlushEntry::Put(v) => v.len(),
        FlushEntry::Delete => 0,
        FlushEntry::Merge(ops) => ops.iter().map(|o| o.len() + 4).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::table_file_name;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-compact-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_table(
        dir: &Path,
        level: usize,
        file_no: u64,
        entries: &[(u64, FlushEntry)],
    ) -> Arc<TableHandle> {
        let path = dir.join(table_file_name(level, file_no));
        let mut w = TableWriter::create(&path, 256, 10, entries.len()).unwrap();
        for (k, e) in entries {
            w.add(&k.to_be_bytes(), e).unwrap();
        }
        Arc::new(w.finish(file_no).unwrap())
    }

    fn put(s: &str) -> FlushEntry {
        FlushEntry::Put(Bytes::from(s.to_string()))
    }

    #[test]
    fn newest_version_wins() {
        let dir = tmpdir("newest");
        let newer = write_table(&dir, 0, 2, &[(1, put("new"))]);
        let older = write_table(&dir, 0, 1, &[(1, put("old")), (2, put("keep"))]);
        let job = CompactionJob {
            level: 0,
            inputs: vec![newer, older],
            output_level: 1,
            bottom_most: true,
            reason: CompactionReason::L0FileCount,
        };
        let cache = BlockCache::new(1 << 20);
        let cfg = LsmConfig::small();
        let mut next = 10;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(out.new_tables.len(), 1);
        let t = &out.new_tables[0];
        assert_eq!(
            t.get(&1u64.to_be_bytes(), &cache).unwrap(),
            crate::memtable::Lookup::Value(Bytes::from_static(b"new"))
        );
        assert_eq!(
            t.get(&2u64.to_be_bytes(), &cache).unwrap(),
            crate::memtable::Lookup::Value(Bytes::from_static(b"keep"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn tombstones_dropped_only_at_bottom() {
        let dir = tmpdir("tomb");
        let t1 = write_table(&dir, 0, 2, &[(1, FlushEntry::Delete)]);
        let t2 = write_table(&dir, 0, 1, &[(1, put("old"))]);
        let cache = BlockCache::new(1 << 20);
        let cfg = LsmConfig::small();

        let job = CompactionJob {
            level: 0,
            inputs: vec![t1.clone(), t2.clone()],
            output_level: 1,
            bottom_most: false,
            reason: CompactionReason::L0FileCount,
        };
        let mut next = 10;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(out.tombstones_dropped, 0);
        assert_eq!(out.new_tables[0].tombstones, 1);

        let job = CompactionJob {
            level: 0,
            inputs: vec![t1, t2],
            output_level: 1,
            bottom_most: true,
            reason: CompactionReason::L0FileCount,
        };
        let mut next = 20;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(out.tombstones_dropped, 1);
        assert!(out.new_tables.is_empty() || out.new_tables[0].tombstones == 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn merge_chains_fold_across_tables() {
        let dir = tmpdir("merge");
        let newest = write_table(
            &dir,
            0,
            3,
            &[(1, FlushEntry::Merge(vec![Bytes::from_static(b"c")]))],
        );
        let mid = write_table(
            &dir,
            0,
            2,
            &[(1, FlushEntry::Merge(vec![Bytes::from_static(b"b")]))],
        );
        let oldest = write_table(&dir, 0, 1, &[(1, put("a"))]);
        let job = CompactionJob {
            level: 0,
            inputs: vec![newest, mid, oldest],
            output_level: 1,
            bottom_most: true,
            reason: CompactionReason::L0FileCount,
        };
        let cache = BlockCache::new(1 << 20);
        let cfg = LsmConfig::small();
        let mut next = 10;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(
            out.new_tables[0].get(&1u64.to_be_bytes(), &cache).unwrap(),
            crate::memtable::Lookup::Value(Bytes::from_static(b"abc"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unresolved_merges_stay_merges_above_bottom() {
        let dir = tmpdir("unresolved");
        let t = write_table(
            &dir,
            0,
            1,
            &[(1, FlushEntry::Merge(vec![Bytes::from_static(b"x")]))],
        );
        let job = CompactionJob {
            level: 0,
            inputs: vec![t],
            output_level: 1,
            bottom_most: false,
            reason: CompactionReason::L0FileCount,
        };
        let cache = BlockCache::new(1 << 20);
        let cfg = LsmConfig::small();
        let mut next = 10;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(
            out.new_tables[0].get(&1u64.to_be_bytes(), &cache).unwrap(),
            crate::memtable::Lookup::Operands(vec![Bytes::from_static(b"x")])
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn merge_over_delete_rebuilds_and_shadows() {
        let dir = tmpdir("merge-del");
        let newest = write_table(
            &dir,
            0,
            3,
            &[(1, FlushEntry::Merge(vec![Bytes::from_static(b"z")]))],
        );
        let mid = write_table(&dir, 0, 2, &[(1, FlushEntry::Delete)]);
        let oldest = write_table(&dir, 0, 1, &[(1, put("gone"))]);
        let job = CompactionJob {
            level: 0,
            inputs: vec![newest, mid, oldest],
            output_level: 1,
            bottom_most: false,
            reason: CompactionReason::L0FileCount,
        };
        let cache = BlockCache::new(1 << 20);
        let cfg = LsmConfig::small();
        let mut next = 10;
        let out = run_compaction(&job, &dir, &cfg, &cache, &mut next, 0).unwrap();
        assert_eq!(
            out.new_tables[0].get(&1u64.to_be_bytes(), &cache).unwrap(),
            crate::memtable::Lookup::Value(Bytes::from_static(b"z"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn picker_prefers_l0_then_lethe_then_size() {
        let dir = tmpdir("picker");
        let cfg = LsmConfig::small_lethe();
        let mut version = Version::empty(cfg.num_levels);

        // Build 4 L0 files to hit the trigger.
        let mut handles = Vec::new();
        for i in 1..=4u64 {
            handles.push((0usize, write_table(&dir, 0, i, &[(i, put("v"))])));
        }
        version = version.apply(&[], &handles);
        let job = pick_compaction(&version, &cfg, 0).expect("L0 job");
        assert_eq!(job.reason, CompactionReason::L0FileCount);

        // Below the L0 trigger but with an aged tombstone file on L1.
        let mut version = Version::empty(cfg.num_levels);
        let tomb = write_table(&dir, 1, 9, &[(5, FlushEntry::Delete)]);
        version = version.apply(&[], &[(1, tomb)]);
        let job = pick_compaction(&version, &cfg, 10_000).expect("lethe job");
        assert_eq!(job.reason, CompactionReason::DeletePersistence);
        // Same layout, vanilla config: no compaction is needed.
        let vanilla = LsmConfig::small();
        assert!(pick_compaction(&version, &vanilla, 10_000).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn size_trigger_fires_when_level_overflows() {
        let dir = tmpdir("size");
        let mut cfg = LsmConfig::small();
        cfg.l1_target_bytes = 1; // Any file overflows L1.
        let t = write_table(&dir, 1, 1, &[(1, put("v"))]);
        let version = Version::empty(cfg.num_levels).apply(&[], &[(1, t)]);
        let job = pick_compaction(&version, &cfg, 0).expect("size job");
        assert_eq!(job.reason, CompactionReason::LevelSize);
        assert_eq!(job.output_level, 2);
        std::fs::remove_dir_all(dir).ok();
    }
}
