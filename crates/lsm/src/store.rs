//! The public LSM store.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use gadget_kv::{
    apply_ops_serially, fsync_dir, BatchResult, CheckpointManifest, Durability, StateStore,
    StoreCounters, StoreError,
};
use gadget_obs::trace;
use gadget_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

use crate::cache::BlockCache;
use crate::compaction::{pick_compaction, run_compaction, CompactionReason};
use crate::config::LsmConfig;
use crate::memtable::{Lookup, MemTable};
use crate::sstable::TableWriter;
use crate::version::{recover_version, table_path, Version};
use crate::wal::{Wal, WalMetrics, WalOp};

/// Mutable write-side state, guarded by one mutex.
struct WriteState {
    mem: MemTable,
    mem_gen: u64,
    immutables: VecDeque<(u64, Arc<MemTable>)>,
    wal: Option<Wal>,
    closed: bool,
}

struct Inner {
    dir: PathBuf,
    config: LsmConfig,
    cache: BlockCache,
    state: Mutex<WriteState>,
    version: RwLock<Arc<Version>>,
    /// Wakes the background worker when there is work.
    work_cv: Condvar,
    /// Wakes stalled writers when an immutable memtable drains.
    stall_cv: Condvar,
    /// Completed flushes + compactions. Bumped by the worker under the
    /// state lock and announced on `stall_cv`, so `compact_and_wait` can
    /// sleep exactly until the tree makes progress instead of polling.
    progress: AtomicU64,
    shutdown: AtomicBool,
    /// Bumped by every `restore`, under the state lock. In-flight flushes
    /// and compactions check it before installing their outputs so work
    /// started against the pre-restore tree cannot pollute the restored
    /// one.
    restore_epoch: AtomicU64,
    /// Global operation sequence; ages tombstones for the Lethe policy.
    seq: AtomicU64,
    next_file_no: AtomicU64,
    counters: StoreCounters,
    /// Registry behind every stat counter below (plus the block cache
    /// and WAL instruments); `metrics()` snapshots it.
    metrics: MetricsRegistry,
    wal_metrics: WalMetrics,
    flushes: Counter,
    flush_bytes_written: Counter,
    compactions_l0: Counter,
    compactions_size: Counter,
    compactions_lethe: Counter,
    tombstones_dropped: Counter,
    compaction_bytes_read: Counter,
    compaction_bytes_written: Counter,
    write_stalls: Counter,
}

/// An embedded LSM-tree key-value store (see the crate docs for the
/// architecture).
///
/// Cloning is cheap and shares the underlying store; the background worker
/// shuts down when the last clone is dropped.
pub struct LsmStore {
    inner: Arc<Inner>,
    worker: Option<Arc<WorkerGuard>>,
}

struct WorkerGuard {
    inner: Arc<Inner>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Clone for LsmStore {
    fn clone(&self) -> Self {
        LsmStore {
            inner: self.inner.clone(),
            worker: self.worker.clone(),
        }
    }
}

fn wal_file_name(gen: u64) -> String {
    format!("wal_{gen}.log")
}

impl LsmStore {
    /// Opens (or creates) a store in `dir`.
    ///
    /// Recovery reopens every SSTable found in the directory and replays
    /// any write-ahead logs into the fresh memtable.
    pub fn open<P: AsRef<Path>>(dir: P, config: LsmConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (version, max_file_no) = recover_version(&dir, config.num_levels)?;

        // Replay WALs in generation order.
        let mut wal_gens: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                name.strip_prefix("wal_")?
                    .strip_suffix(".log")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        wal_gens.sort_unstable();
        let mut mem = MemTable::new();
        for gen in &wal_gens {
            for op in Wal::replay(&dir.join(wal_file_name(*gen)))? {
                match op {
                    WalOp::Put(k, v) => mem.put(&k, &v),
                    WalOp::Delete(k) => mem.delete(&k),
                    WalOp::Merge(k, v) => mem.merge(&k, &v),
                }
            }
        }
        let mem_gen = wal_gens.last().copied().unwrap_or(0) + 1;
        // Old WAL contents now live in the fresh memtable; retire the files
        // once the new generation's WAL exists.
        // Recovered entries are re-logged under the new generation so the
        // old WAL files can be retired immediately.
        let metrics = MetricsRegistry::new();
        let wal_metrics = WalMetrics::registered(&metrics);
        let mut wal = if config.wal {
            let mut w = Wal::create(&dir.join(wal_file_name(mem_gen)), config.wal_sync)?;
            w.set_metrics(wal_metrics.clone());
            Some(w)
        } else {
            None
        };
        if let Some(w) = wal.as_mut() {
            for (k, e) in mem.flush_iter() {
                match e {
                    crate::memtable::FlushEntry::Put(v) => {
                        w.append(&WalOp::Put(k.to_vec(), v.to_vec()))?
                    }
                    crate::memtable::FlushEntry::Delete => w.append(&WalOp::Delete(k.to_vec()))?,
                    crate::memtable::FlushEntry::Merge(ops) => {
                        for op in ops {
                            w.append(&WalOp::Merge(k.to_vec(), op.to_vec()))?;
                        }
                    }
                }
            }
            w.flush()?;
        }
        for gen in &wal_gens {
            let _ = std::fs::remove_file(dir.join(wal_file_name(*gen)));
        }

        let inner = Arc::new(Inner {
            cache: BlockCache::registered(config.block_cache_bytes, &metrics),
            state: Mutex::new(WriteState {
                mem,
                mem_gen,
                immutables: VecDeque::new(),
                wal,
                closed: false,
            }),
            version: RwLock::new(Arc::new(version)),
            work_cv: Condvar::new(),
            stall_cv: Condvar::new(),
            progress: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            restore_epoch: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            next_file_no: AtomicU64::new(max_file_no),
            counters: StoreCounters::registered(&metrics),
            wal_metrics,
            flushes: metrics.counter("flushes"),
            flush_bytes_written: metrics.counter("flush_bytes_written"),
            compactions_l0: metrics.counter("compactions_l0"),
            compactions_size: metrics.counter("compactions_size"),
            compactions_lethe: metrics.counter("compactions_lethe"),
            tombstones_dropped: metrics.counter("tombstones_dropped"),
            compaction_bytes_read: metrics.counter("compaction_bytes_read"),
            compaction_bytes_written: metrics.counter("compaction_bytes_written"),
            write_stalls: metrics.counter("write_stalls"),
            metrics,
            dir,
            config,
        });

        // A sharded store owns one worker per shard: name the thread
        // after its shard and tag its spans (flush/compaction/cache
        // fill) so trace attribution can tell the shards apart.
        let shard_id = inner.config.shard_id;
        let worker_name = match shard_id {
            Some(shard) => format!("lsm-worker-{shard}"),
            None => "lsm-worker".to_string(),
        };
        let worker_inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name(worker_name)
            .spawn(move || {
                if let Some(shard) = shard_id {
                    trace::set_thread_shard(shard);
                }
                worker_loop(worker_inner)
            })
            .map_err(StoreError::Io)?;

        Ok(LsmStore {
            worker: Some(Arc::new(WorkerGuard {
                inner: inner.clone(),
                handle: Mutex::new(Some(handle)),
            })),
            inner,
        })
    }

    /// Blocks until every buffered write has been flushed to SSTables and
    /// no compaction is pending. Primarily for tests and benchmarks that
    /// need a quiesced tree.
    pub fn compact_and_wait(&self) -> Result<(), StoreError> {
        // Rotate the current memtable out, then wait for the queue to drain
        // and for the picker to report no pending work.
        {
            let mut state = self.inner.state.lock();
            if !state.mem.is_empty() {
                rotate_memtable(&self.inner, &mut state)?;
            }
        }
        loop {
            {
                let mut state = self.inner.state.lock();
                if !state.immutables.is_empty() {
                    self.inner.work_cv.notify_all();
                    self.inner
                        .stall_cv
                        .wait_for(&mut state, std::time::Duration::from_millis(10));
                    continue;
                }
            }
            let version = self.inner.version.read().clone();
            let seq = self.inner.seq.load(Ordering::Relaxed);
            if pick_compaction(&version, &self.inner.config, seq).is_none() {
                return Ok(());
            }
            let before = self.inner.progress.load(Ordering::SeqCst);
            self.inner.work_cv.notify_all();
            let mut state = self.inner.state.lock();
            if self.inner.progress.load(Ordering::SeqCst) == before {
                // The worker bumps `progress` under the state lock before
                // signalling, so a compaction completing between the load
                // above and this wait cannot be missed; the timeout is only
                // a safety net.
                self.inner
                    .stall_cv
                    .wait_for(&mut state, std::time::Duration::from_millis(100));
            }
        }
    }

    /// Merging range scan across memtables and all levels.
    fn scan_impl(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        use std::collections::btree_map::Entry;
        use std::collections::BTreeMap;

        enum Partial {
            Final(Option<Bytes>),
            Pending(Vec<Bytes>),
        }

        fn absorb(
            acc: &mut BTreeMap<Vec<u8>, Partial>,
            key: &[u8],
            entry: crate::memtable::FlushEntry,
        ) {
            use crate::memtable::{fold_merge, FlushEntry};
            match acc.entry(key.to_vec()) {
                Entry::Vacant(slot) => {
                    slot.insert(match entry {
                        FlushEntry::Put(v) => Partial::Final(Some(v)),
                        FlushEntry::Delete => Partial::Final(None),
                        FlushEntry::Merge(ops) => Partial::Pending(ops),
                    });
                }
                Entry::Occupied(mut slot) => match slot.get_mut() {
                    Partial::Final(_) => {} // Newer data shadows this entry.
                    Partial::Pending(pending) => {
                        // `entry` is older than the pending operands.
                        let resolved = match entry {
                            FlushEntry::Put(v) => Some(fold_merge(Some(&v), pending)),
                            FlushEntry::Delete => Some(fold_merge(None, pending)),
                            FlushEntry::Merge(mut ops) => {
                                ops.append(pending);
                                *pending = ops;
                                return;
                            }
                        };
                        *slot.get_mut() = Partial::Final(resolved);
                    }
                },
            }
        }

        let mut acc: BTreeMap<Vec<u8>, Partial> = BTreeMap::new();
        // Snapshot sources under the state lock for consistency with gets.
        let (mem_entries, imm_tables, version) = {
            let state = self.inner.state.lock();
            if state.closed {
                return Err(StoreError::Closed);
            }
            let mem_entries: Vec<(Vec<u8>, crate::memtable::FlushEntry)> = state
                .mem
                .flush_iter()
                .filter(|(k, _)| *k >= lo && *k <= hi)
                .map(|(k, e)| (k.to_vec(), e))
                .collect();
            let imm: Vec<std::sync::Arc<crate::memtable::MemTable>> =
                state.immutables.iter().map(|(_, m)| m.clone()).collect();
            (mem_entries, imm, self.inner.version.read().clone())
        };
        for (k, e) in mem_entries {
            absorb(&mut acc, &k, e);
        }
        // Immutable memtables, newest first.
        for imm in imm_tables.iter().rev() {
            for (k, e) in imm.flush_iter() {
                if k >= lo && k <= hi {
                    absorb(&mut acc, k, e);
                }
            }
        }
        // L0 newest-first, then deeper levels.
        for level in &version.levels {
            for table in level {
                if !table.overlaps(lo, hi) {
                    continue;
                }
                let mut it = table.iter(&self.inner.cache);
                while let Some((k, e)) = it.next()? {
                    if k.as_slice() > hi {
                        break;
                    }
                    if k.as_slice() >= lo {
                        absorb(&mut acc, &k, e);
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(acc.len());
        for (k, partial) in acc {
            match partial {
                Partial::Final(Some(v)) => out.push((Bytes::from(k), v)),
                Partial::Final(None) => {}
                Partial::Pending(ops) => {
                    out.push((Bytes::from(k), crate::memtable::fold_merge(None, &ops)))
                }
            }
        }
        Ok(out)
    }

    /// Number of files on each level (diagnostics and tests).
    pub fn level_file_counts(&self) -> Vec<usize> {
        let v = self.inner.version.read().clone();
        (0..self.inner.config.num_levels)
            .map(|l| v.level_files(l))
            .collect()
    }

    fn write_op(&self, op: WalOp) -> Result<(), StoreError> {
        self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let inner = &self.inner;
        let mut state = inner.state.lock();
        if state.closed {
            return Err(StoreError::Closed);
        }
        if let Some(wal) = state.wal.as_mut() {
            wal.append(&op)?;
        }
        match &op {
            WalOp::Put(k, v) => state.mem.put(k, v),
            WalOp::Delete(k) => state.mem.delete(k),
            WalOp::Merge(k, v) => state.mem.merge(k, v),
        }
        if state.mem.approximate_bytes() >= inner.config.memtable_bytes {
            rotate_memtable(inner, &mut state)?;
        }
        Ok(())
    }

    /// Simulates a process crash for recovery tests.
    ///
    /// The store stops serving ([`StoreError::Closed`]), the user-space
    /// WAL buffer is dropped *without* flushing (exactly what SIGKILL
    /// does to a `BufWriter` tail), all in-memory state evaporates, and
    /// the background worker is joined so no post-"crash" file activity
    /// races a reopen. On-disk files are left as a real crash would
    /// leave them; reopen the directory to recover.
    pub fn simulate_crash(&self) {
        {
            let mut state = self.inner.state.lock();
            state.closed = true;
            if let Some(w) = state.wal.take() {
                w.discard();
            }
            state.mem = MemTable::new();
            state.immutables.clear();
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        self.inner.stall_cv.notify_all();
        if let Some(worker) = &self.worker {
            if let Some(h) = worker.handle.lock().take() {
                let _ = h.join();
            }
        }
    }

    fn checkpoint_impl(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        const WAL_SNAPSHOT: &str = "wal_0.log";
        let inner = &self.inner;
        std::fs::create_dir_all(dir).map_err(|e| StoreError::path_io("open", dir, e))?;
        // A compaction can delete a captured table before we copy it; a
        // fresh capture then sees the post-compaction file set, so retry.
        for _attempt in 0..5 {
            // One state-lock hold captures a consistent cut: flushes
            // install tables and retire memtables under this lock, so
            // {version} ∪ {immutables} ∪ {mem} is exactly one point in
            // the serialized history.
            let (ops, version) = {
                let state = inner.state.lock();
                if state.closed {
                    return Err(StoreError::Closed);
                }
                let mut ops = Vec::new();
                for (_, imm) in state.immutables.iter() {
                    memtable_ops(imm, &mut ops);
                }
                memtable_ops(&state.mem, &mut ops);
                (ops, inner.version.read().clone())
            };
            let mut wanted: Vec<(String, PathBuf, u64)> = Vec::new();
            for level in &version.levels {
                for t in level {
                    let name = t
                        .path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or_default()
                        .to_string();
                    wanted.push((name, t.path.clone(), t.size));
                }
            }
            // Incremental mode: SSTables are immutable and file numbers
            // are never reused, so a same-named same-sized file from a
            // previous checkpoint into this directory is the same data.
            let mut existing: std::collections::HashMap<String, u64> =
                std::collections::HashMap::new();
            for entry in std::fs::read_dir(dir).map_err(|e| StoreError::path_io("open", dir, e))? {
                let entry = entry.map_err(|e| StoreError::path_io("open", dir, e))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".sst") {
                    if let Ok(meta) = entry.metadata() {
                        existing.insert(name, meta.len());
                    }
                }
            }
            let mut manifest = CheckpointManifest::new(self.name());
            let mut missing_source = false;
            for (name, src, size) in &wanted {
                let dst = dir.join(name);
                if existing.remove(name) == Some(*size) {
                    manifest.reused_files += 1;
                } else {
                    let _ = std::fs::remove_file(&dst);
                    match gadget_kv::link_or_copy(src, &dst) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                            missing_source = true;
                            break;
                        }
                        Err(e) => return Err(StoreError::path_io("copy", dst, e)),
                    }
                }
                manifest.push_file(name.clone(), *size);
            }
            if missing_source {
                continue; // Retry with a fresh cut.
            }
            // Files from an older checkpoint that this cut no longer
            // references are stale; drop them so the directory always
            // equals the manifest.
            for (name, _) in existing {
                let _ = std::fs::remove_file(dir.join(name));
            }
            // The memtable cut rides along as a one-generation WAL
            // snapshot, replayed on restore exactly like crash recovery.
            let wal_path = dir.join(WAL_SNAPSHOT);
            let mut wal = Wal::create(&wal_path, true)?;
            for op in &ops {
                wal.append_record(op)?;
            }
            wal.commit()?;
            wal.flush()?;
            drop(wal);
            let wal_bytes = std::fs::metadata(&wal_path)
                .map(|m| m.len())
                .map_err(|e| StoreError::path_io("open", wal_path, e))?;
            manifest.push_file(WAL_SNAPSHOT, wal_bytes);
            fsync_dir(dir)?;
            manifest.save(dir)?;
            return Ok(manifest);
        }
        Err(StoreError::Corruption(
            "checkpoint raced compaction 5 times; giving up".to_string(),
        ))
    }

    fn restore_impl(&self, dir: &Path) -> Result<(), StoreError> {
        let inner = &self.inner;
        let manifest = CheckpointManifest::load(dir)?;
        if manifest.store != self.name() {
            return Err(StoreError::Corruption(format!(
                "checkpoint was taken by store {:?}, not {:?}",
                manifest.store,
                self.name()
            )));
        }
        if manifest.shards != 0 {
            return Err(StoreError::Corruption(format!(
                "checkpoint is a {}-shard super-checkpoint; restore it through ShardedStore",
                manifest.shards
            )));
        }
        let mut state = inner.state.lock();
        if state.closed {
            return Err(StoreError::Closed);
        }
        // From here on, in-flight flushes/compactions must not install.
        inner.restore_epoch.fetch_add(1, Ordering::SeqCst);
        if let Some(w) = state.wal.take() {
            w.discard();
        }
        state.mem = MemTable::new();
        state.immutables.clear();
        {
            let mut vguard = inner.version.write();
            for level in &vguard.levels {
                for t in level {
                    inner.cache.evict_file(t.file_no);
                }
            }
            // Clear every data file — including strays outside the
            // current version — so the directory equals the checkpoint.
            for entry in std::fs::read_dir(&inner.dir)
                .map_err(|e| StoreError::path_io("open", inner.dir.clone(), e))?
            {
                let entry = entry.map_err(|e| StoreError::path_io("open", inner.dir.clone(), e))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".sst") || (name.starts_with("wal_") && name.ends_with(".log")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
            for f in &manifest.files {
                if !f.name.ends_with(".sst") {
                    continue;
                }
                let src = dir.join(&f.name);
                let dst = inner.dir.join(&f.name);
                gadget_kv::link_or_copy(&src, &dst)
                    .map_err(|e| StoreError::path_io("copy", dst, e))?;
            }
            fsync_dir(&inner.dir)?;
            let (version, max_file_no) = recover_version(&inner.dir, inner.config.num_levels)?;
            if version.total_files()
                != manifest
                    .files
                    .iter()
                    .filter(|f| f.name.ends_with(".sst"))
                    .count()
            {
                return Err(StoreError::Corruption(
                    "restored table count does not match manifest".to_string(),
                ));
            }
            inner.next_file_no.fetch_max(max_file_no, Ordering::SeqCst);
            *vguard = Arc::new(version);
        }
        // Rebuild the memtable from the checkpoint's WAL snapshot and
        // re-log it under a fresh generation, mirroring `open`.
        let mut mem = MemTable::new();
        for op in Wal::replay(&dir.join("wal_0.log"))? {
            match op {
                WalOp::Put(k, v) => mem.put(&k, &v),
                WalOp::Delete(k) => mem.delete(&k),
                WalOp::Merge(k, v) => mem.merge(&k, &v),
            }
        }
        state.mem_gen += 1;
        if inner.config.wal {
            let mut w = Wal::create(
                &inner.dir.join(wal_file_name(state.mem_gen)),
                inner.config.wal_sync,
            )?;
            w.set_metrics(inner.wal_metrics.clone());
            let mut ops = Vec::new();
            memtable_ops(&mem, &mut ops);
            for op in &ops {
                w.append_record(op)?;
            }
            w.commit()?;
            w.flush()?;
            state.wal = Some(w);
        }
        state.mem = mem;
        inner.stall_cv.notify_all();
        Ok(())
    }
}

/// Serializes a memtable's contents as WAL operations (one entry per
/// key; merge operands in arrival order), appending to `out`.
fn memtable_ops(mem: &MemTable, out: &mut Vec<WalOp>) {
    for (k, e) in mem.flush_iter() {
        match e {
            crate::memtable::FlushEntry::Put(v) => out.push(WalOp::Put(k.to_vec(), v.to_vec())),
            crate::memtable::FlushEntry::Delete => out.push(WalOp::Delete(k.to_vec())),
            crate::memtable::FlushEntry::Merge(operands) => {
                for op in operands {
                    out.push(WalOp::Merge(k.to_vec(), op.to_vec()));
                }
            }
        }
    }
}

/// Point lookup with the state lock already held (the batch read path).
///
/// Unlike [`StateStore::get`], which drops the lock before probing
/// SSTables, this keeps it: a batch interleaving reads and writes must see
/// its own earlier writes, and releasing the lock mid-batch would forfeit
/// the single-acquisition batching contract.
fn lookup_in_state(
    inner: &Inner,
    state: &WriteState,
    key: &[u8],
) -> Result<Option<Bytes>, StoreError> {
    let mut pending: Vec<Bytes> = Vec::new();
    match state.mem.get(key) {
        Lookup::Value(v) => return Ok(Some(v)),
        Lookup::Deleted => return Ok(None),
        Lookup::Operands(ops) => pending = ops,
        Lookup::NotFound => {}
    }
    for (_, imm) in state.immutables.iter().rev() {
        let lookup = imm.get(key);
        if let Some(r) = crate::sstable::resolve_with(&mut pending, lookup) {
            return Ok(r);
        }
    }
    let version = inner.version.read().clone();
    Ok(version.get(key, &inner.cache, pending)?)
}

/// Rotates the active memtable into the immutable queue, stalling if the
/// queue is full. Caller holds the state lock.
fn rotate_memtable(
    inner: &Inner,
    state: &mut parking_lot::MutexGuard<'_, WriteState>,
) -> Result<(), StoreError> {
    while state.immutables.len() >= inner.config.max_immutable_memtables {
        inner.write_stalls.inc();
        inner.work_cv.notify_all();
        inner
            .stall_cv
            .wait_for(state, std::time::Duration::from_millis(100));
    }
    let mem = std::mem::take(&mut state.mem);
    let gen = state.mem_gen;
    state.mem_gen += 1;
    if inner.config.wal {
        if let Some(w) = state.wal.as_mut() {
            w.flush()?;
        }
        let mut w = Wal::create(
            &inner.dir.join(wal_file_name(state.mem_gen)),
            inner.config.wal_sync,
        )?;
        w.set_metrics(inner.wal_metrics.clone());
        state.wal = Some(w);
    }
    state.immutables.push_back((gen, Arc::new(mem)));
    inner.work_cv.notify_all();
    Ok(())
}

/// The background worker: flushes immutable memtables and runs compactions.
fn worker_loop(inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            // Final drain: flush remaining immutables so close loses nothing
            // beyond the WAL-protected active memtable.
            while flush_one(&inner).unwrap_or(false) {}
            return;
        }
        match flush_one(&inner) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(_) => continue, // Transient I/O errors retry on next pass.
        }
        let version = inner.version.read().clone();
        let seq = inner.seq.load(Ordering::Relaxed);
        if let Some(job) = pick_compaction(&version, &inner.config, seq) {
            let mut next_no = inner.next_file_no.load(Ordering::Relaxed);
            let epoch = inner.restore_epoch.load(Ordering::SeqCst);
            // Always-on background span: the attribution report joins
            // tail-latency ops against exactly these windows.
            let _span = trace::span(trace::Category::Compaction, job.level as u64);
            match run_compaction(
                &job,
                &inner.dir,
                &inner.config,
                &inner.cache,
                &mut next_no,
                seq,
            ) {
                Ok(out) => {
                    inner.next_file_no.store(next_no, Ordering::Relaxed);
                    match job.reason {
                        CompactionReason::L0FileCount => inner.compactions_l0.inc(),
                        CompactionReason::DeletePersistence => inner.compactions_lethe.inc(),
                        CompactionReason::LevelSize => inner.compactions_size.inc(),
                    };
                    inner.tombstones_dropped.add(out.tombstones_dropped);
                    inner.compaction_bytes_read.add(out.bytes_read);
                    inner.compaction_bytes_written.add(out.bytes_written);
                    let deleted: Vec<(usize, u64)> = job
                        .inputs
                        .iter()
                        .map(|t| {
                            // Input tables live on job.level or output_level.
                            let lvl = if version.levels[job.level]
                                .iter()
                                .any(|x| x.file_no == t.file_no)
                            {
                                job.level
                            } else {
                                job.output_level
                            };
                            (lvl, t.file_no)
                        })
                        .collect();
                    let added: Vec<(usize, Arc<crate::sstable::TableHandle>)> = out
                        .new_tables
                        .iter()
                        .map(|t| (job.output_level, t.clone()))
                        .collect();
                    {
                        // Install and delete inputs under one version-lock
                        // hold: a restore (which also holds the version
                        // lock) must see either the pre- or post-compaction
                        // file set, never a half-swapped one.
                        let mut vguard = inner.version.write();
                        if inner.restore_epoch.load(Ordering::SeqCst) != epoch {
                            // A restore replaced the tree while this
                            // compaction ran; its outputs describe a state
                            // that no longer exists.
                            drop(vguard);
                            for t in &out.new_tables {
                                let _ = std::fs::remove_file(&t.path);
                            }
                            continue;
                        }
                        let new_version = vguard.apply(&deleted, &added);
                        *vguard = Arc::new(new_version);
                        for t in &job.inputs {
                            inner.cache.evict_file(t.file_no);
                            let _ = std::fs::remove_file(&t.path);
                        }
                    }
                    {
                        // Bump under the state lock so `compact_and_wait`
                        // cannot check-then-wait across this update.
                        let _state = inner.state.lock();
                        inner.progress.fetch_add(1, Ordering::SeqCst);
                    }
                    inner.stall_cv.notify_all();
                }
                Err(_) => {
                    // Back off before retrying, but stay wakeable: shutdown
                    // or new work signals `work_cv` and ends the wait early.
                    let mut state = inner.state.lock();
                    if !inner.shutdown.load(Ordering::SeqCst) {
                        inner
                            .work_cv
                            .wait_for(&mut state, std::time::Duration::from_millis(10));
                    }
                }
            }
            continue;
        }
        // Nothing to do: sleep until signalled.
        let mut state = inner.state.lock();
        if state.immutables.is_empty() && !inner.shutdown.load(Ordering::SeqCst) {
            inner
                .work_cv
                .wait_for(&mut state, std::time::Duration::from_millis(50));
        }
    }
}

/// Flushes the oldest immutable memtable, if any. Returns whether one was
/// flushed.
fn flush_one(inner: &Inner) -> Result<bool, StoreError> {
    let (gen, mem) = {
        let state = inner.state.lock();
        match state.immutables.front() {
            Some((gen, mem)) => (*gen, mem.clone()),
            None => return Ok(false),
        }
    };
    if mem.is_empty() {
        let mut state = inner.state.lock();
        state.immutables.pop_front();
        let _ = std::fs::remove_file(inner.dir.join(wal_file_name(gen)));
        inner.progress.fetch_add(1, Ordering::SeqCst);
        inner.stall_cv.notify_all();
        return Ok(true);
    }
    let _span = trace::span(trace::Category::Flush, mem.len() as u64);
    let file_no = inner.next_file_no.fetch_add(1, Ordering::Relaxed) + 1;
    let path = table_path(&inner.dir, 0, file_no);
    let mut writer = TableWriter::create(
        &path,
        inner.config.block_bytes,
        inner.config.bloom_bits_per_key,
        mem.len(),
    )?;
    for (k, e) in mem.flush_iter() {
        writer.add(k, &e)?;
    }
    let mut handle = writer.finish(file_no)?;
    handle.creation_seq = inner.seq.load(Ordering::Relaxed);
    // The table's data is synced by `finish`; sync its directory entry too.
    fsync_dir(&inner.dir)?;
    {
        // Install the new table and retire the memtable atomically w.r.t.
        // readers, so no key is visible twice or not at all.
        let mut state = inner.state.lock();
        if state.immutables.front().map(|(g, _)| *g) != Some(gen) {
            // A restore (or simulated crash) emptied the queue while this
            // flush ran; the table belongs to a discarded state.
            let _ = std::fs::remove_file(&path);
            return Ok(false);
        }
        {
            let mut vguard = inner.version.write();
            let new_version = vguard.apply(&[], &[(0, Arc::new(handle))]);
            *vguard = Arc::new(new_version);
        }
        state.immutables.pop_front();
        inner.progress.fetch_add(1, Ordering::SeqCst);
        inner.stall_cv.notify_all();
    }
    let _ = std::fs::remove_file(inner.dir.join(wal_file_name(gen)));
    inner.flushes.inc();
    if let Ok(meta) = std::fs::metadata(&path) {
        inner.flush_bytes_written.add(meta.len());
    }
    Ok(true)
}

impl StateStore for LsmStore {
    fn name(&self) -> &'static str {
        if self.inner.config.lethe.is_some() {
            "lethe"
        } else {
            "lsm"
        }
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.inner.counters.record_get();
        let mut pending: Vec<Bytes> = Vec::new();
        let version = {
            let state = self.inner.state.lock();
            if state.closed {
                return Err(StoreError::Closed);
            }
            match state.mem.get(key) {
                Lookup::Value(v) => return Ok(Some(v)),
                Lookup::Deleted => return Ok(None),
                Lookup::Operands(ops) => pending = ops,
                Lookup::NotFound => {}
            }
            let mut resolved: Option<Option<Bytes>> = None;
            for (_, imm) in state.immutables.iter().rev() {
                let lookup = imm.get(key);
                if let Some(r) = crate::sstable::resolve_with(&mut pending, lookup) {
                    resolved = Some(r);
                    break;
                }
            }
            if let Some(r) = resolved {
                return Ok(r);
            }
            // Snapshot the version under the same lock so a concurrent
            // flush cannot duplicate or hide data between the two probes.
            self.inner.version.read().clone()
        };
        Ok(version.get(key, &self.inner.cache, pending)?)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.inner.counters.record_put();
        self.write_op(WalOp::Put(key.to_vec(), value.to_vec()))
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.inner.counters.record_merge();
        self.write_op(WalOp::Merge(key.to_vec(), operand.to_vec()))
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.inner.counters.record_delete();
        self.write_op(WalOp::Delete(key.to_vec()))
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        self.scan_impl(lo, hi)
    }

    fn durability(&self) -> Durability {
        if self.inner.config.wal {
            Durability::WalBacked {
                sync: self.inner.config.wal_sync,
            }
        } else {
            Durability::SnapshotOnly
        }
    }

    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        self.checkpoint_impl(dir)
    }

    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        self.restore_impl(dir)
    }

    fn supports_scan(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        true
    }

    fn flush(&self) -> Result<(), StoreError> {
        let mut state = self.inner.state.lock();
        if let Some(wal) = state.wal.as_mut() {
            wal.flush()?;
        }
        Ok(())
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        let mut out = self.inner.counters.snapshot();
        let (hits, misses) = self.inner.cache.stats();
        out.extend([
            ("flushes".to_string(), self.inner.flushes.get()),
            (
                "compactions_l0".to_string(),
                self.inner.compactions_l0.get(),
            ),
            (
                "compactions_size".to_string(),
                self.inner.compactions_size.get(),
            ),
            (
                "compactions_lethe".to_string(),
                self.inner.compactions_lethe.get(),
            ),
            (
                "tombstones_dropped".to_string(),
                self.inner.tombstones_dropped.get(),
            ),
            (
                "compaction_bytes_read".to_string(),
                self.inner.compaction_bytes_read.get(),
            ),
            (
                "compaction_bytes_written".to_string(),
                self.inner.compaction_bytes_written.get(),
            ),
            ("block_cache_hits".to_string(), hits),
            ("block_cache_misses".to_string(), misses),
            ("write_stalls".to_string(), self.inner.write_stalls.get()),
        ]);
        out
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        // Single-op batches take the per-op methods: the grouping
        // machinery has nothing to amortize over.
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        let inner = &self.inner;
        // One sequence bump per write, claimed up front (the single-op path
        // bumps per write; gets never age Lethe tombstones).
        let writes = batch.iter().filter(|op| op.is_write()).count() as u64;
        if writes > 0 {
            inner.seq.fetch_add(writes, Ordering::Relaxed);
        }
        let mut out = Vec::with_capacity(batch.len());
        let mut state = inner.state.lock();
        if state.closed {
            return Err(StoreError::Closed);
        }
        for op in batch {
            match op {
                Op::Get { key } => {
                    inner.counters.record_get();
                    out.push(BatchResult::Value(lookup_in_state(inner, &state, key)?));
                    continue;
                }
                Op::Put { key, value } => {
                    inner.counters.record_put();
                    if let Some(wal) = state.wal.as_mut() {
                        wal.append_record(&WalOp::Put(key.to_vec(), value.to_vec()))?;
                    }
                    state.mem.put(key, value);
                }
                Op::Merge { key, operand } => {
                    inner.counters.record_merge();
                    if let Some(wal) = state.wal.as_mut() {
                        wal.append_record(&WalOp::Merge(key.to_vec(), operand.to_vec()))?;
                    }
                    state.mem.merge(key, operand);
                }
                Op::Delete { key } => {
                    inner.counters.record_delete();
                    if let Some(wal) = state.wal.as_mut() {
                        wal.append_record(&WalOp::Delete(key.to_vec()))?;
                    }
                    state.mem.delete(key);
                }
            }
            out.push(BatchResult::Applied);
            if state.mem.approximate_bytes() >= inner.config.memtable_bytes {
                // Close the open group before this WAL generation rotates
                // away: once the writer is replaced, its pending records
                // could never be synced.
                if let Some(wal) = state.wal.as_mut() {
                    wal.commit()?;
                }
                rotate_memtable(inner, &mut state)?;
            }
        }
        // Group commit: every record appended above shares this one fsync.
        if let Some(wal) = state.wal.as_mut() {
            wal.commit()?;
        }
        Ok(out)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.inner.metrics.snapshot();
        snap.histograms.push((
            "wal_fsync_ns".to_string(),
            self.inner.wal_metrics.fsync_ns.snapshot(),
        ));
        // Write amplification: total bytes hitting disk (flushes plus
        // compaction rewrites) per byte of flushed user data, ×100 to
        // fit a gauge. 100 means "no amplification yet".
        let flushed = self.inner.flush_bytes_written.get();
        if flushed > 0 {
            let total = flushed + self.inner.compaction_bytes_written.get();
            snap.push_gauge("write_amplification_x100", (total * 100 / flushed) as i64);
        }
        let version = self.inner.version.read().clone();
        snap.push_gauge("l0_files", version.level_files(0) as i64);
        snap.push_gauge("total_files", version.total_files() as i64);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-lsm-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn basic_crud() {
        let dir = tmpdir("crud");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        s.put(b"a", b"1").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        s.merge(b"m", b"x").unwrap();
        s.merge(b"m", b"y").unwrap();
        assert_eq!(s.get(b"m").unwrap().as_deref(), Some(&b"xy"[..]));
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn survives_flushes_and_compactions() {
        let dir = tmpdir("churn");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        let n = 5_000u64;
        for i in 0..n {
            s.put(&i.to_be_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        s.compact_and_wait().unwrap();
        for i in (0..n).step_by(97) {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("value-{i}").as_bytes()),
                "key {i}"
            );
        }
        let counters = s.internal_counters();
        let flushes = counters.iter().find(|(k, _)| k == "flushes").unwrap().1;
        assert!(flushes > 0, "expected at least one flush");
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deletes_survive_compaction() {
        let dir = tmpdir("deletes");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for i in 0..2_000u64 {
            s.put(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in 0..2_000u64 {
            if i % 2 == 0 {
                s.delete(&i.to_be_bytes()).unwrap();
            }
        }
        s.compact_and_wait().unwrap();
        for i in (0..2_000u64).step_by(101) {
            let expected = if i % 2 == 0 { None } else { Some(&b"v"[..]) };
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                expected,
                "key {i}"
            );
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flushed_tombstone_reads_as_absent() {
        // Regression: a tombstone that has been flushed into an SSTable
        // (but not yet dropped by a bottom-most compaction) used to
        // resolve to an empty value instead of `None` on the multi-level
        // read path.
        let dir = tmpdir("tomb-sst");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        s.merge(b"k", b"a").unwrap();
        s.merge(b"k", b"b").unwrap();
        s.put(b"k", b"v").unwrap();
        s.delete(b"k").unwrap();
        // Rotate the memtable so the tombstone lands in L0. One small
        // file never reaches the compaction trigger, so the tombstone
        // stays on disk and the get must cross into the version probe.
        s.compact_and_wait().unwrap();
        assert_eq!(s.level_file_counts()[0], 1, "tombstone should sit in L0");
        assert_eq!(s.get(b"k").unwrap(), None);
        // Same via the batch read path, which resolves under the lock.
        let out = s
            .apply_batch(&[Op::get(b"k".to_vec()), Op::get(b"k".to_vec())])
            .unwrap();
        assert_eq!(out[0], BatchResult::Value(None));
        // A merge above the flushed tombstone rebuilds from empty.
        s.merge(b"k", b"z").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"z"[..]));
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merges_survive_flush_boundaries() {
        let dir = tmpdir("merge-flush");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        // Interleave merges with filler so operands end up in different
        // SSTables.
        for round in 0..20u64 {
            s.merge(b"acc", format!("[{round}]").as_bytes()).unwrap();
            for i in 0..300u64 {
                s.put(&(round * 1_000 + i).to_be_bytes(), b"filler-filler")
                    .unwrap();
            }
        }
        s.compact_and_wait().unwrap();
        let v = s.get(b"acc").unwrap().unwrap();
        let text = String::from_utf8(v.to_vec()).unwrap();
        let expected: String = (0..20).map(|r| format!("[{r}]")).collect();
        assert_eq!(text, expected);
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_replays_wal() {
        let dir = tmpdir("recovery");
        {
            let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
            s.put(b"persisted", b"yes").unwrap();
            s.merge(b"ops", b"a").unwrap();
            s.merge(b"ops", b"b").unwrap();
            s.delete(b"persisted").unwrap();
            s.put(b"alive", b"1").unwrap();
            s.flush().unwrap();
            // Drop without compacting: data only in WAL + maybe memtable.
        }
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        assert_eq!(s.get(b"alive").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(s.get(b"persisted").unwrap(), None);
        assert_eq!(s.get(b"ops").unwrap().as_deref(), Some(&b"ab"[..]));
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_reopens_sstables() {
        let dir = tmpdir("reopen-sst");
        {
            let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
            for i in 0..3_000u64 {
                s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            s.compact_and_wait().unwrap();
        }
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for i in (0..3_000u64).step_by(331) {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lethe_purges_tombstones_faster() {
        let dir_l = tmpdir("lethe");
        let s = LsmStore::open(&dir_l, LsmConfig::small_lethe()).unwrap();
        for i in 0..2_000u64 {
            s.put(&i.to_be_bytes(), b"some-value-bytes").unwrap();
        }
        for i in 0..2_000u64 {
            s.delete(&i.to_be_bytes()).unwrap();
        }
        // Push enough subsequent traffic to age the tombstones past the
        // 500-op threshold.
        for i in 10_000..14_000u64 {
            s.put(&i.to_be_bytes(), b"more").unwrap();
        }
        s.compact_and_wait().unwrap();
        let counters = s.internal_counters();
        let get = |name: &str| counters.iter().find(|(k, _)| k == name).unwrap().1;
        assert!(get("tombstones_dropped") > 0, "no tombstones purged");
        assert_eq!(s.name(), "lethe");
        drop(s);
        std::fs::remove_dir_all(&dir_l).ok();
    }

    #[test]
    fn scan_merges_all_sources() {
        let dir = tmpdir("scan");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        // Older data pushed into SSTables.
        for i in 0..2_000u64 {
            s.put(&i.to_be_bytes(), b"old").unwrap();
        }
        s.compact_and_wait().unwrap();
        // Fresh overwrites, merges, and deletes still in the memtable.
        s.put(&10u64.to_be_bytes(), b"new").unwrap();
        s.merge(&11u64.to_be_bytes(), b"+tail").unwrap();
        s.delete(&12u64.to_be_bytes()).unwrap();
        let hits = s.scan(&10u64.to_be_bytes(), &14u64.to_be_bytes()).unwrap();
        let by_key: std::collections::HashMap<u64, &[u8]> = hits
            .iter()
            .map(|(k, v)| (u64::from_be_bytes(k[..8].try_into().unwrap()), v.as_ref()))
            .collect();
        assert_eq!(by_key[&10], b"new");
        assert_eq!(by_key[&11], b"old+tail");
        assert!(!by_key.contains_key(&12), "deleted key visible in scan");
        assert_eq!(by_key[&13], b"old");
        assert_eq!(by_key[&14], b"old");
        // Sorted output.
        for w in hits.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_empty_range() {
        let dir = tmpdir("scan-empty");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        s.put(b"a", b"1").unwrap();
        assert!(s.scan(b"x", b"z").unwrap().is_empty());
        assert!(s.supports_scan());
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scans_stay_consistent_under_concurrent_writes() {
        // A scan racing flushes/compactions must never see phantom or
        // missing keys from the immutable prefix of the keyspace.
        let dir = tmpdir("scan-race");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        // Immutable prefix written up front.
        for i in 0..500u64 {
            s.put(&i.to_be_bytes(), b"stable").unwrap();
        }
        let writer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for i in 10_000..14_000u64 {
                    s.put(&i.to_be_bytes(), b"churn").unwrap();
                    if i % 5 == 0 {
                        s.delete(&(i - 2_000).to_be_bytes()).unwrap();
                    }
                }
            })
        };
        for _ in 0..30 {
            let hits = s.scan(&0u64.to_be_bytes(), &499u64.to_be_bytes()).unwrap();
            assert_eq!(hits.len(), 500, "stable prefix corrupted by race");
            assert!(hits.iter().all(|(_, v)| v.as_ref() == b"stable"));
        }
        writer.join().unwrap();
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_clients_are_consistent() {
        let dir = tmpdir("concurrent");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = (t << 32 | i).to_be_bytes();
                    s.put(&key, &i.to_le_bytes()).unwrap();
                    if i % 3 == 0 {
                        let got = s.get(&key).unwrap().unwrap();
                        assert_eq!(got.as_ref(), &i.to_le_bytes());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_returns_latest() {
        let dir = tmpdir("overwrite");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for round in 0..10u64 {
            for i in 0..500u64 {
                s.put(&i.to_be_bytes(), format!("r{round}").as_bytes())
                    .unwrap();
            }
        }
        s.compact_and_wait().unwrap();
        for i in (0..500u64).step_by(37) {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&b"r9"[..])
            );
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_batch_matches_op_by_op_and_group_commits() {
        let mut config = LsmConfig::small();
        config.wal_sync = true;
        let dir = tmpdir("batch");
        let s = LsmStore::open(&dir, config).unwrap();
        let mut batch = Vec::new();
        for i in 0..200u64 {
            batch.push(Op::put(
                i.to_be_bytes().to_vec(),
                format!("v{i}").into_bytes(),
            ));
        }
        batch.push(Op::merge(b"acc".to_vec(), b"one".to_vec()));
        batch.push(Op::merge(b"acc".to_vec(), b"+two".to_vec()));
        batch.push(Op::get(b"acc".to_vec()));
        batch.push(Op::delete(5u64.to_be_bytes().to_vec()));
        batch.push(Op::get(5u64.to_be_bytes().to_vec()));
        batch.push(Op::get(7u64.to_be_bytes().to_vec()));
        let out = s.apply_batch(&batch).unwrap();
        // Batch sees its own writes, in order.
        assert_eq!(out[202].value().map(|v| v.as_ref()), Some(&b"one+two"[..]));
        assert_eq!(out[204], BatchResult::Value(None));
        assert_eq!(out[205].value().map(|v| v.as_ref()), Some(&b"v7"[..]));
        // Group commit: far fewer fsyncs than appends.
        let snap = s.metrics().unwrap();
        let appends = snap.counter("wal_appends").unwrap();
        let fsyncs = snap.counter("wal_fsyncs").unwrap();
        assert!(appends >= 203, "appends {appends}");
        assert!(
            fsyncs >= 1 && fsyncs < appends,
            "fsyncs {fsyncs} vs appends {appends}"
        );
        drop(s);
        // The batch must survive recovery (its group was committed).
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        assert_eq!(s.get(b"acc").unwrap().as_deref(), Some(&b"one+two"[..]));
        assert_eq!(s.get(&5u64.to_be_bytes()).unwrap(), None);
        assert_eq!(
            s.get(&7u64.to_be_bytes()).unwrap().as_deref(),
            Some(&b"v7"[..])
        );
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_batch_rotates_memtable_mid_batch() {
        // A batch far bigger than the memtable must rotate (and stay
        // correct) mid-batch.
        let mut config = LsmConfig::small();
        config.memtable_bytes = 4 << 10;
        let dir = tmpdir("batch-rotate");
        let s = LsmStore::open(&dir, config).unwrap();
        let batch: Vec<Op> = (0..2_000u64)
            .map(|i| Op::put(i.to_be_bytes().to_vec(), vec![b'x'; 64]))
            .collect();
        s.apply_batch(&batch).unwrap();
        s.compact_and_wait().unwrap();
        for i in (0..2_000u64).step_by(113) {
            assert_eq!(s.get(&i.to_be_bytes()).unwrap().map(|v| v.len()), Some(64));
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_restore_roundtrip_across_levels() {
        let dir = tmpdir("ckpt");
        let ckpt = tmpdir("ckpt-out");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        assert_eq!(s.durability(), Durability::WalBacked { sync: false });
        // Data spread across SSTables and the live memtable.
        for i in 0..3_000u64 {
            s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        s.compact_and_wait().unwrap();
        s.put(b"memtable-only", b"fresh").unwrap();
        s.merge(b"acc", b"a").unwrap();
        s.merge(b"acc", b"b").unwrap();
        s.delete(&7u64.to_be_bytes()).unwrap();
        let manifest = s.checkpoint(&ckpt).unwrap();
        assert!(manifest.files.iter().any(|f| f.name.ends_with(".sst")));
        assert!(manifest.files.iter().any(|f| f.name == "wal_0.log"));

        // Diverge, then roll back.
        s.put(b"memtable-only", b"clobbered").unwrap();
        s.put(b"post-checkpoint", b"x").unwrap();
        s.delete(b"acc").unwrap();
        s.restore(&ckpt).unwrap();
        assert_eq!(
            s.get(b"memtable-only").unwrap().as_deref(),
            Some(&b"fresh"[..])
        );
        assert_eq!(s.get(b"acc").unwrap().as_deref(), Some(&b"ab"[..]));
        assert_eq!(s.get(b"post-checkpoint").unwrap(), None);
        assert_eq!(s.get(&7u64.to_be_bytes()).unwrap(), None);
        for i in (0..3_000u64).step_by(173) {
            if i == 7 {
                continue;
            }
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
        // The restored state survives a WAL-recovery reopen too.
        drop(s);
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        assert_eq!(
            s.get(b"memtable-only").unwrap().as_deref(),
            Some(&b"fresh"[..])
        );
        assert_eq!(s.get(b"post-checkpoint").unwrap(), None);
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ckpt).ok();
    }

    #[test]
    fn incremental_checkpoint_reuses_unchanged_tables() {
        let dir = tmpdir("ckpt-incr");
        let ckpt = tmpdir("ckpt-incr-out");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for i in 0..3_000u64 {
            s.put(&i.to_be_bytes(), b"value-bytes-here").unwrap();
        }
        s.compact_and_wait().unwrap();
        let first = s.checkpoint(&ckpt).unwrap();
        assert_eq!(first.reused_files, 0);
        // No new flushes between checkpoints: every table is reusable.
        s.put(b"small-delta", b"1").unwrap();
        let second = s.checkpoint(&ckpt).unwrap();
        let tables = second
            .files
            .iter()
            .filter(|f| f.name.ends_with(".sst"))
            .count() as u64;
        assert_eq!(second.reused_files, tables, "all tables reused");
        s.restore(&ckpt).unwrap();
        assert_eq!(s.get(b"small-delta").unwrap().as_deref(), Some(&b"1"[..]));
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ckpt).ok();
    }

    #[test]
    fn simulated_crash_with_sync_wal_loses_nothing() {
        let mut config = LsmConfig::small();
        config.wal_sync = true;
        let dir = tmpdir("crash-sync");
        let s = LsmStore::open(&dir, config.clone()).unwrap();
        for i in 0..500u64 {
            s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        s.simulate_crash();
        assert!(matches!(s.get(b"x"), Err(StoreError::Closed)));
        drop(s);
        let s = LsmStore::open(&dir, config).unwrap();
        for i in 0..500u64 {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "acknowledged write {i} lost"
            );
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulated_crash_without_sync_recovers_a_prefix() {
        // Async WAL: the buffered tail may vanish, but whatever survives
        // must be a *prefix* of the acknowledged history.
        let dir = tmpdir("crash-async");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for i in 0..500u64 {
            s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        s.simulate_crash();
        drop(s);
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        let mut seen_missing = false;
        for i in 0..500u64 {
            let got = s.get(&i.to_be_bytes()).unwrap();
            match got {
                Some(v) => {
                    assert!(
                        !seen_missing,
                        "key {i} present after a lost key: not a prefix"
                    );
                    assert_eq!(v.as_ref(), format!("v{i}").as_bytes());
                }
                None => seen_missing = true,
            }
        }
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_snapshot_covers_internals() {
        let dir = tmpdir("metrics");
        let s = LsmStore::open(&dir, LsmConfig::small()).unwrap();
        for i in 0..5_000u64 {
            s.put(&i.to_be_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        s.compact_and_wait().unwrap();
        for i in (0..5_000u64).step_by(191) {
            s.get(&i.to_be_bytes()).unwrap();
        }
        let snap = s.metrics().expect("lsm store exposes metrics");
        assert!(snap.counter("flushes").unwrap() > 0);
        assert!(snap.counter("wal_appends").unwrap() >= 5_000);
        assert!(snap.counter("wal_bytes").unwrap() > 0);
        assert!(snap.counter("puts").unwrap() == 5_000);
        assert!(
            snap.counter("block_cache_hits").unwrap() + snap.counter("block_cache_misses").unwrap()
                > 0
        );
        // Flushes happened, so write amplification is defined and ≥ 1×.
        assert!(snap.gauge("write_amplification_x100").unwrap() >= 100);
        assert!(snap.gauge("total_files").unwrap() >= snap.gauge("l0_files").unwrap());
        assert!(
            snap.histogram("wal_fsync_ns").is_some(),
            "fsync histogram exported even when sync is off"
        );
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }
}
