//! Bloom filters for SSTables.
//!
//! Standard Kirsch–Mitzenmacher double hashing: `k` probe positions are
//! derived from two 64-bit hashes, giving false-positive rates close to the
//! theoretical optimum of `0.6185^(bits/key)`.

/// A fixed-size Bloom filter built once per SSTable.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_probes: u32,
}

impl BloomFilter {
    /// Builds a filter sized for `num_keys` keys at `bits_per_key` bits
    /// each, then inserts nothing. Returns `None` if `bits_per_key` is 0.
    pub fn new(num_keys: usize, bits_per_key: u32) -> Option<Self> {
        if bits_per_key == 0 {
            return None;
        }
        let num_bits = (num_keys.max(1) as u64 * bits_per_key as u64).max(64);
        // k = bits_per_key * ln2, clamped to a sane range.
        let num_probes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Some(BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_probes,
        })
    }

    /// Reconstructs a filter from its serialized form.
    ///
    /// Returns `None` on a malformed payload.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let num_bits = u64::from_le_bytes(data[0..8].try_into().ok()?);
        let num_probes = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let words = &data[12..];
        if !words.len().is_multiple_of(8) || (words.len() as u64 / 8) < num_bits.div_ceil(64) {
            return None;
        }
        let bits = words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(BloomFilter {
            bits,
            num_bits,
            num_probes,
        })
    }

    /// Serializes the filter.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_probes.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = double_hash(key);
        let mut h = h1;
        for _ in 0..self.num_probes {
            let bit = h % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            h = h.wrapping_add(h2);
        }
    }

    /// Tests membership. False positives are possible; false negatives are
    /// not.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = double_hash(key);
        let mut h = h1;
        for _ in 0..self.num_probes {
            let bit = h % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }
}

/// Two independent 64-bit hashes of `key` (FNV-1a with different offsets).
fn double_hash(key: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    for &b in key {
        h1 = (h1 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        h2 = (h2 ^ b as u64)
            .wrapping_mul(0x0100_0000_01b5)
            .rotate_left(17);
    }
    (h1, h2 | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1_000, 10).unwrap();
        for i in 0..1_000u64 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..1_000u64 {
            assert!(f.may_contain(&i.to_be_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10).unwrap();
        for i in 0..10_000u64 {
            f.insert(&i.to_be_bytes());
        }
        let fp = (10_000..110_000u64)
            .filter(|i| f.may_contain(&i.to_be_bytes()))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn zero_bits_disables_filter() {
        assert!(BloomFilter::new(100, 0).is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::new(100, 10).unwrap();
        for i in 0..100u64 {
            f.insert(&i.to_be_bytes());
        }
        let g = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        for i in 0..100u64 {
            assert!(g.may_contain(&i.to_be_bytes()));
        }
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_none());
    }
}
