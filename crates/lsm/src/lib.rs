//! An LSM-tree key-value store: the workspace's RocksDB-class substrate.
//!
//! This crate implements the architectural class of store the paper
//! evaluates as "RocksDB" and "Lethe": a log-structured merge tree with
//!
//! * an in-memory **memtable** (plus a bounded queue of immutable
//!   memtables awaiting flush),
//! * an optional **write-ahead log** for durability,
//! * file-backed **SSTables** with 4 KiB blocks, a sparse block index, and
//!   per-table Bloom filters,
//! * a sharded **LRU block cache**,
//! * **leveled compaction** with an L0 file-count trigger and
//!   size-multiplier targets for L1+, running on a background thread, and
//! * a native **merge operator** (list append), the feature the paper
//!   identifies as decisive for holistic window workloads (§6.5).
//!
//! The **Lethe mode** ([`LsmConfig::lethe`]) adds FADE-style delete-aware
//! compaction: files holding tombstones older than a configurable delete
//! persistence threshold are prioritized for compaction so deleted state is
//! physically reclaimed promptly — the property Lethe [SIGMOD '20]
//! contributes on top of vanilla RocksDB.
//!
//! # Examples
//!
//! ```
//! use gadget_kv::StateStore;
//! use gadget_lsm::{LsmConfig, LsmStore};
//!
//! let dir = std::env::temp_dir().join("lsm-doc-example");
//! let _ = std::fs::remove_dir_all(&dir);
//! let store = LsmStore::open(&dir, LsmConfig::small()).unwrap();
//! store.put(b"hello", b"world").unwrap();
//! store.merge(b"hello", b"!").unwrap();
//! assert_eq!(store.get(b"hello").unwrap().unwrap().as_ref(), b"world!");
//! ```

pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod config;
pub mod crc;
pub mod memtable;
pub mod sstable;
pub mod store;
pub mod version;
pub mod wal;

pub use config::{LethePolicy, LsmConfig};
pub use store::LsmStore;
pub use wal::{tear_tail, TearMode};
