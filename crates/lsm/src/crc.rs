//! CRC-32C (Castagnoli) checksums for WAL records and SSTable footers.
//!
//! Implemented in-repo to keep the dependency surface minimal; the
//! table-driven algorithm is the classic byte-at-a-time variant.

/// Polynomial for CRC-32C, reflected.
const POLY: u32 = 0x82F6_3B78;

/// Lazily built lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32C test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32c(b"hello world");
        let b = crc32c(b"hello worle");
        assert_ne!(a, b);
    }
}
