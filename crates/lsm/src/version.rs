//! Level metadata: which SSTables live on which level.
//!
//! A [`Version`] is an immutable snapshot of the tree's file layout. The
//! store keeps the current version behind an `RwLock<Arc<Version>>`; reads
//! clone the `Arc` and proceed without blocking writers, while flushes and
//! compactions install a new version copy-on-write.
//!
//! Instead of a MANIFEST file, each SSTable encodes its level in its file
//! name (`L<level>_<file_no>.sst`), so recovery is a directory scan. This
//! trades a little rename traffic for a much simpler recovery path and is
//! documented behaviour of this substrate.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use crate::cache::BlockCache;
use crate::sstable::{resolve_with, TableHandle};

/// Immutable snapshot of the level layout.
#[derive(Debug, Clone, Default)]
pub struct Version {
    /// `levels[0]` is L0 ordered newest-first; `levels[i>=1]` are sorted by
    /// smallest key and have disjoint ranges.
    pub levels: Vec<Vec<Arc<TableHandle>>>,
}

impl Version {
    /// Creates an empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Self {
        Version {
            levels: vec![Vec::new(); num_levels],
        }
    }

    /// Total bytes of SSTable data on `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|t| t.size).sum()
    }

    /// Number of files on `level`.
    pub fn level_files(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Total number of SSTables.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Point lookup across all levels, resolving merge chains.
    ///
    /// `pending` carries merge operands already collected from the
    /// memtables (application order). Returns `Ok(None)` if the key is
    /// absent everywhere and no operands were pending.
    pub fn get(
        &self,
        key: &[u8],
        cache: &BlockCache,
        mut pending: Vec<Bytes>,
    ) -> std::io::Result<Option<Bytes>> {
        // L0: newest file first; files may overlap.
        for table in &self.levels[0] {
            let lookup = table.get(key, cache)?;
            if let Some(resolved) = resolve_with(&mut pending, lookup) {
                return Ok(resolved);
            }
        }
        // L1+: at most one file can contain the key.
        for level in &self.levels[1..] {
            let idx = level.partition_point(|t| t.largest.as_slice() < key);
            if idx < level.len() && level[idx].key_in_range(key) {
                let lookup = level[idx].get(key, cache)?;
                if let Some(resolved) = resolve_with(&mut pending, lookup) {
                    return Ok(resolved);
                }
            }
        }
        // Bottom reached: operands (if any) fold over an empty base.
        if pending.is_empty() {
            Ok(None)
        } else {
            Ok(Some(crate::memtable::fold_merge(None, &pending)))
        }
    }

    /// Files on `level` whose ranges overlap `[lo, hi]`.
    pub fn overlapping(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<TableHandle>> {
        self.levels[level]
            .iter()
            .filter(|t| t.overlaps(lo, hi))
            .cloned()
            .collect()
    }

    /// Returns a new version with `deleted` file numbers removed from
    /// `level_del` levels and `added` tables inserted.
    pub fn apply(&self, deleted: &[(usize, u64)], added: &[(usize, Arc<TableHandle>)]) -> Version {
        let mut levels = self.levels.clone();
        for &(level, file_no) in deleted {
            levels[level].retain(|t| t.file_no != file_no);
        }
        for (level, table) in added {
            levels[*level].push(table.clone());
        }
        // Restore invariants: L0 newest-first, others sorted by smallest.
        levels[0].sort_by_key(|t| std::cmp::Reverse(t.file_no));
        for level in levels.iter_mut().skip(1) {
            level.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
        Version { levels }
    }
}

/// File-name helpers: SSTables are named `L<level>_<file_no>.sst`.
pub fn table_file_name(level: usize, file_no: u64) -> String {
    format!("L{level}_{file_no}.sst")
}

/// Parses a table file name back into `(level, file_no)`.
pub fn parse_table_file_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix('L')?.strip_suffix(".sst")?;
    let (level, file_no) = rest.split_once('_')?;
    Some((level.parse().ok()?, file_no.parse().ok()?))
}

/// Scans `dir` for SSTables and reconstructs a version.
///
/// Returns the version and the largest file number seen.
pub fn recover_version(dir: &Path, num_levels: usize) -> std::io::Result<(Version, u64)> {
    let mut version = Version::empty(num_levels);
    let mut max_file_no = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((level, file_no)) = parse_table_file_name(name) else {
            continue;
        };
        if level >= num_levels {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("table {name} references level {level} beyond configured {num_levels}"),
            ));
        }
        let handle = TableHandle::open(&entry.path(), file_no)?;
        version.levels[level].push(Arc::new(handle));
        max_file_no = max_file_no.max(file_no);
    }
    version = version.apply(&[], &[]); // Re-sorts into invariant order.
    Ok((version, max_file_no))
}

/// Full path of a table file.
pub fn table_path(dir: &Path, level: usize, file_no: u64) -> PathBuf {
    dir.join(table_file_name(level, file_no))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(table_file_name(0, 42), "L0_42.sst");
        assert_eq!(parse_table_file_name("L0_42.sst"), Some((0, 42)));
        assert_eq!(parse_table_file_name("L3_7.sst"), Some((3, 7)));
        assert_eq!(parse_table_file_name("MANIFEST"), None);
        assert_eq!(parse_table_file_name("Lx_7.sst"), None);
        assert_eq!(parse_table_file_name("L1_a.sst"), None);
    }

    #[test]
    fn empty_version_get_returns_pending_fold() {
        let v = Version::empty(3);
        let cache = BlockCache::new(1024);
        assert_eq!(v.get(b"k", &cache, Vec::new()).unwrap(), None);
        let out = v
            .get(b"k", &cache, vec![Bytes::from_static(b"ab")])
            .unwrap();
        assert_eq!(out, Some(Bytes::from_static(b"ab")));
    }

    #[test]
    fn apply_maintains_l0_recency_order() {
        use crate::memtable::FlushEntry;
        use crate::sstable::TableWriter;
        let dir = std::env::temp_dir().join(format!("gadget-version-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut handles = Vec::new();
        for file_no in 1..=3u64 {
            let path = table_path(&dir, 0, file_no);
            let mut w = TableWriter::create(&path, 256, 10, 1).unwrap();
            w.add(b"k", &FlushEntry::Put(Bytes::from(format!("v{file_no}"))))
                .unwrap();
            handles.push(Arc::new(w.finish(file_no).unwrap()));
        }
        let v = Version::empty(2).apply(
            &[],
            &[
                (0, handles[0].clone()),
                (0, handles[2].clone()),
                (0, handles[1].clone()),
            ],
        );
        let file_nos: Vec<u64> = v.levels[0].iter().map(|t| t.file_no).collect();
        assert_eq!(file_nos, vec![3, 2, 1]);
        // Newest L0 file wins the read.
        let cache = BlockCache::new(1024);
        assert_eq!(
            v.get(b"k", &cache, Vec::new()).unwrap(),
            Some(Bytes::from_static(b"v3"))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rebuilds_levels() {
        use crate::memtable::FlushEntry;
        use crate::sstable::TableWriter;
        let dir = std::env::temp_dir().join(format!("gadget-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (level, file_no) in [(0usize, 5u64), (1, 3), (1, 4)] {
            let path = table_path(&dir, level, file_no);
            let mut w = TableWriter::create(&path, 256, 10, 1).unwrap();
            let key = format!("key-{file_no}");
            w.add(key.as_bytes(), &FlushEntry::Put(Bytes::from_static(b"v")))
                .unwrap();
            w.finish(file_no).unwrap();
        }
        let (version, max_no) = recover_version(&dir, 3).unwrap();
        assert_eq!(version.level_files(0), 1);
        assert_eq!(version.level_files(1), 2);
        assert_eq!(max_no, 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
