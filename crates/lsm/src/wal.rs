//! Write-ahead log.
//!
//! Each record is `[len u32][crc u32][payload]` where the payload encodes
//! one logical operation. On open, the log is replayed into the fresh
//! memtable; a torn tail (partial *final* record or a CRC mismatch on it)
//! is treated as the end of the log, as in RocksDB's default recovery
//! mode. A bad record *followed by valid records* is different: the data
//! after it proves the log continued past that point, so replay
//! hard-errors instead of silently dropping acknowledged writes.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::time::Instant;

use gadget_obs::trace;
use gadget_obs::{AtomicHistogram, Counter, MetricsRegistry};
use std::sync::Arc;

use crate::crc::crc32c;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_MERGE: u8 = 2;

/// One logical operation recorded in the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Full-value write.
    Put(Vec<u8>, Vec<u8>),
    /// Tombstone.
    Delete(Vec<u8>),
    /// Merge operand.
    Merge(Vec<u8>, Vec<u8>),
}

/// Durability instruments shared by successive WAL generations.
///
/// The store keeps one of these and re-attaches it to each WAL it
/// creates (the active log is rotated on every memtable rotation), so
/// the counters accumulate across generations. Fsync latency is always
/// timed: an fsync costs orders of magnitude more than the two clock
/// reads around it.
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Operations appended.
    pub appends: Counter,
    /// Payload bytes appended (including record framing).
    pub bytes: Counter,
    /// `sync_data` calls issued.
    pub fsyncs: Counter,
    /// Latency of each `sync_data` call, in nanoseconds.
    pub fsync_ns: Arc<AtomicHistogram>,
}

impl WalMetrics {
    /// Registers WAL instruments in `registry` under `wal_appends` /
    /// `wal_bytes` / `wal_fsyncs` (the histogram is exported by the
    /// store as `wal_fsync_ns`).
    pub fn registered(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            appends: registry.counter("wal_appends"),
            bytes: registry.counter("wal_bytes"),
            fsyncs: registry.counter("wal_fsyncs"),
            fsync_ns: Arc::new(AtomicHistogram::new()),
        }
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    sync: bool,
    metrics: Option<WalMetrics>,
    /// Bytes appended since the last [`Wal::commit`]; nonzero means the
    /// current group has records whose durability is still pending.
    pending_bytes: u64,
}

impl Wal {
    /// Creates (truncates) a WAL at `path`, fsyncing the parent
    /// directory so the new segment's *name* survives a crash too.
    pub fn create(path: &Path, sync: bool) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        if let Some(parent) = path.parent() {
            gadget_kv::fsync_dir(parent).map_err(io::Error::other)?;
        }
        Ok(Wal {
            writer: BufWriter::new(file),
            sync,
            metrics: None,
            pending_bytes: 0,
        })
    }

    /// Consumes the WAL, dropping any bytes still buffered in user space
    /// *without* flushing them — exactly what a crash does to the
    /// non-durable tail. Bytes already handed to the OS stay in the
    /// file; the descriptor is closed cleanly.
    pub fn discard(self) {
        let (file, _buffered) = self.writer.into_parts();
        drop(file);
    }

    /// Attaches durability instruments; subsequent appends and fsyncs
    /// are counted against them.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Appends one operation and, when the WAL is in sync mode, commits
    /// it immediately (one fsync per op — the unbatched write path).
    pub fn append(&mut self, op: &WalOp) -> io::Result<()> {
        self.append_record(op)?;
        self.commit()
    }

    /// Appends one operation without syncing.
    ///
    /// Pair with [`Wal::commit`]: a group of `append_record` calls followed
    /// by one `commit` is the group-commit protocol — every record in the
    /// group shares a single fsync.
    pub fn append_record(&mut self, op: &WalOp) -> io::Result<()> {
        let mut payload = Vec::new();
        match op {
            WalOp::Put(k, v) => {
                payload.push(OP_PUT);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(v);
            }
            WalOp::Delete(k) => {
                payload.push(OP_DELETE);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
            }
            WalOp::Merge(k, v) => {
                payload.push(OP_MERGE);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(v);
            }
        }
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32c(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.bytes.add(8 + payload.len() as u64);
        }
        self.pending_bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Commits the current group: flushes and, in sync mode, issues one
    /// `sync_data` covering every record appended since the last commit.
    ///
    /// A no-op when no records are pending, so get-only batches cost no
    /// fsync. In non-sync mode this neither flushes nor syncs, matching
    /// the unbatched `append` path (durability deferred to rotation).
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.sync || self.pending_bytes == 0 {
            return Ok(());
        }
        let group_bytes = self.pending_bytes;
        self.pending_bytes = 0;
        self.writer.flush()?;
        if self.metrics.is_some() || trace::enabled() {
            let started = Instant::now();
            self.writer.get_ref().sync_data()?;
            let nanos = started.elapsed().as_nanos() as u64;
            if let Some(m) = &self.metrics {
                m.fsync_ns.record(nanos);
                m.fsyncs.inc();
            }
            trace::record_ending_now(trace::Category::WalFsync, group_bytes, nanos);
        } else {
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Flushes buffered appends to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Replays a WAL file, stopping cleanly at a torn tail.
    ///
    /// Returns the decoded operations in append order. A missing file
    /// yields an empty log. A damaged *final* record (truncated or
    /// CRC-failing) is the crash-mid-append case and ends replay cleanly;
    /// a damaged record with a valid record after it means bytes beyond
    /// the damage were durable — that is real corruption and replay
    /// returns `InvalidData` rather than silently dropping the suffix.
    pub fn replay(path: &Path) -> io::Result<Vec<WalOp>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut ops = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = start + len;
            if end > data.len() {
                break; // Torn tail: the final append was cut mid-record.
            }
            let payload = &data[start..end];
            let op = if crc32c(payload) == crc {
                decode_payload(payload)
            } else {
                None
            };
            match op {
                Some(op) => {
                    ops.push(op);
                    pos = end;
                }
                None if valid_record_at(&data, end) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "corrupt WAL record at byte {pos} followed by valid records \
                             in {}",
                            path.display()
                        ),
                    ));
                }
                None => break, // Damaged final record: clean end of log.
            }
        }
        Ok(ops)
    }
}

/// Whether a complete, CRC-valid, decodable record starts at `pos`.
fn valid_record_at(data: &[u8], pos: usize) -> bool {
    if pos + 8 > data.len() {
        return false;
    }
    let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
    let start = pos + 8;
    let Some(end) = start.checked_add(len) else {
        return false;
    };
    if end > data.len() {
        return false;
    }
    let payload = &data[start..end];
    crc32c(payload) == crc && decode_payload(payload).is_some()
}

/// How [`tear_tail`] damages a log, simulating a torn write at the
/// device level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TearMode {
    /// Cut the last few bytes off the file (partial sector write).
    Truncate,
    /// Flip bits in the final byte (garbled sector).
    Garble,
}

/// Damages the tail of the WAL at `path` — the torn-write injection hook
/// used by the crash harness to prove CRC-bounded recovery. Returns
/// `false` when the file is missing or empty (nothing to tear).
pub fn tear_tail(path: &Path, mode: TearMode) -> io::Result<bool> {
    let len = match std::fs::metadata(path) {
        Ok(m) => m.len(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if len == 0 {
        return Ok(false);
    }
    match mode {
        TearMode::Truncate => {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(len.saturating_sub(3))?;
            file.sync_all()?;
        }
        TearMode::Garble => {
            let mut data = std::fs::read(path)?;
            let n = data.len();
            data[n - 1] ^= 0xFF;
            std::fs::write(path, &data)?;
        }
    }
    Ok(true)
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    if payload.len() < 5 {
        return None;
    }
    let tag = payload[0];
    let klen = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
    if 5 + klen > payload.len() {
        return None;
    }
    let key = payload[5..5 + klen].to_vec();
    let rest = payload[5 + klen..].to_vec();
    match tag {
        OP_PUT => Some(WalOp::Put(key, rest)),
        OP_DELETE if rest.is_empty() => Some(WalOp::Delete(key)),
        OP_MERGE => Some(WalOp::Merge(key, rest)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-wal-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        let ops = vec![
            WalOp::Put(b"k1".to_vec(), b"v1".to_vec()),
            WalOp::Merge(b"k1".to_vec(), b"+x".to_vec()),
            WalOp::Delete(b"k1".to_vec()),
        ];
        {
            let mut wal = Wal::create(&path, false).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn.wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        // Truncate mid-record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Put(b"a".to_vec(), b"1".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc.wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // Corrupt last record's payload.
        std::fs::write(&path, &data).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_mid_log_is_a_hard_error() {
        let path = tmp("midlog.wal");
        let first_len;
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.flush().unwrap();
            first_len = std::fs::metadata(&path).unwrap().len() as usize;
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"c".to_vec(), b"3".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        // Corrupt the payload of the SECOND record: valid records follow
        // it, so this cannot be a torn append and must hard-error.
        let mut data = std::fs::read(&path).unwrap();
        data[first_len + 9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let err = Wal::replay(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_tail_after_bad_record_is_clean_end() {
        let path = tmp("garbagetail.wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        // Corrupt the last record AND append garbage that does not parse
        // as a record: still a torn tail, not mid-log corruption.
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        data.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        std::fs::write(&path, &data).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Put(b"a".to_vec(), b"1".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tear_tail_injection_bounds_recovery() {
        for (mode, label) in [(TearMode::Truncate, "trunc"), (TearMode::Garble, "garble")] {
            let path = tmp(&format!("tear-{label}.wal"));
            {
                let mut wal = Wal::create(&path, false).unwrap();
                wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                    .unwrap();
                wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                    .unwrap();
                wal.flush().unwrap();
            }
            assert!(tear_tail(&path, mode).unwrap());
            // Recovery is CRC-bounded: exactly the undamaged prefix.
            let ops = Wal::replay(&path).unwrap();
            assert_eq!(ops, vec![WalOp::Put(b"a".to_vec(), b"1".to_vec())]);
            std::fs::remove_file(&path).ok();
        }
        // Nothing to tear in a missing file.
        let missing = tmp("tear-missing.wal");
        std::fs::remove_file(&missing).ok();
        assert!(!tear_tail(&missing, TearMode::Truncate).unwrap());
    }

    #[test]
    fn discard_loses_the_buffered_tail_only() {
        let path = tmp("discard.wal");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
            .unwrap();
        wal.flush().unwrap(); // First record reaches the OS.
        wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
            .unwrap(); // Second stays in the BufWriter.
        wal.discard();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Put(b"a".to_vec(), b"1".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_fsyncs_parent_directory() {
        let before = gadget_kv::dir_fsync_count();
        let path = tmp("dirsync.wal");
        let wal = Wal::create(&path, false).unwrap();
        assert!(gadget_kv::dir_fsync_count() > before);
        wal.discard();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("never-created.wal");
        std::fs::remove_file(&path).ok();
        assert_eq!(Wal::replay(&path).unwrap(), Vec::new());
    }

    #[test]
    fn group_commit_amortizes_fsync() {
        let path = tmp("group.wal");
        let reg = MetricsRegistry::new();
        {
            let mut wal = Wal::create(&path, true).unwrap();
            wal.set_metrics(WalMetrics::registered(&reg));
            for i in 0..16u8 {
                wal.append_record(&WalOp::Put(vec![i], vec![i; 8])).unwrap();
            }
            wal.commit().unwrap();
            // An empty group costs nothing.
            wal.commit().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wal_appends"), Some(16));
        assert_eq!(snap.counter("wal_fsyncs"), Some(1));
        assert_eq!(Wal::replay(&path).unwrap().len(), 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_count_appends_and_fsyncs() {
        let path = tmp("metrics.wal");
        let reg = MetricsRegistry::new();
        let metrics = WalMetrics::registered(&reg);
        {
            let mut wal = Wal::create(&path, true).unwrap();
            wal.set_metrics(metrics.clone());
            wal.append(&WalOp::Put(b"key".to_vec(), b"value".to_vec()))
                .unwrap();
            wal.append(&WalOp::Delete(b"key".to_vec())).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wal_appends"), Some(2));
        assert_eq!(snap.counter("wal_fsyncs"), Some(2));
        // Framing (8 bytes) + tag (1) + klen (4) + key + value, per op.
        assert_eq!(snap.counter("wal_bytes"), Some(21 + 16));
        assert_eq!(metrics.fsync_ns.count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
