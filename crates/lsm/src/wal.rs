//! Write-ahead log.
//!
//! Each record is `[len u32][crc u32][payload]` where the payload encodes
//! one logical operation. On open, the log is replayed into the fresh
//! memtable; a torn tail (partial final record or CRC mismatch) is treated
//! as the end of the log, as in RocksDB's default recovery mode.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::time::Instant;

use gadget_obs::trace;
use gadget_obs::{AtomicHistogram, Counter, MetricsRegistry};
use std::sync::Arc;

use crate::crc::crc32c;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_MERGE: u8 = 2;

/// One logical operation recorded in the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Full-value write.
    Put(Vec<u8>, Vec<u8>),
    /// Tombstone.
    Delete(Vec<u8>),
    /// Merge operand.
    Merge(Vec<u8>, Vec<u8>),
}

/// Durability instruments shared by successive WAL generations.
///
/// The store keeps one of these and re-attaches it to each WAL it
/// creates (the active log is rotated on every memtable rotation), so
/// the counters accumulate across generations. Fsync latency is always
/// timed: an fsync costs orders of magnitude more than the two clock
/// reads around it.
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Operations appended.
    pub appends: Counter,
    /// Payload bytes appended (including record framing).
    pub bytes: Counter,
    /// `sync_data` calls issued.
    pub fsyncs: Counter,
    /// Latency of each `sync_data` call, in nanoseconds.
    pub fsync_ns: Arc<AtomicHistogram>,
}

impl WalMetrics {
    /// Registers WAL instruments in `registry` under `wal_appends` /
    /// `wal_bytes` / `wal_fsyncs` (the histogram is exported by the
    /// store as `wal_fsync_ns`).
    pub fn registered(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            appends: registry.counter("wal_appends"),
            bytes: registry.counter("wal_bytes"),
            fsyncs: registry.counter("wal_fsyncs"),
            fsync_ns: Arc::new(AtomicHistogram::new()),
        }
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    sync: bool,
    metrics: Option<WalMetrics>,
    /// Bytes appended since the last [`Wal::commit`]; nonzero means the
    /// current group has records whose durability is still pending.
    pending_bytes: u64,
}

impl Wal {
    /// Creates (truncates) a WAL at `path`.
    pub fn create(path: &Path, sync: bool) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            writer: BufWriter::new(file),
            sync,
            metrics: None,
            pending_bytes: 0,
        })
    }

    /// Attaches durability instruments; subsequent appends and fsyncs
    /// are counted against them.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Appends one operation and, when the WAL is in sync mode, commits
    /// it immediately (one fsync per op — the unbatched write path).
    pub fn append(&mut self, op: &WalOp) -> io::Result<()> {
        self.append_record(op)?;
        self.commit()
    }

    /// Appends one operation without syncing.
    ///
    /// Pair with [`Wal::commit`]: a group of `append_record` calls followed
    /// by one `commit` is the group-commit protocol — every record in the
    /// group shares a single fsync.
    pub fn append_record(&mut self, op: &WalOp) -> io::Result<()> {
        let mut payload = Vec::new();
        match op {
            WalOp::Put(k, v) => {
                payload.push(OP_PUT);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(v);
            }
            WalOp::Delete(k) => {
                payload.push(OP_DELETE);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
            }
            WalOp::Merge(k, v) => {
                payload.push(OP_MERGE);
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(v);
            }
        }
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32c(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.bytes.add(8 + payload.len() as u64);
        }
        self.pending_bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Commits the current group: flushes and, in sync mode, issues one
    /// `sync_data` covering every record appended since the last commit.
    ///
    /// A no-op when no records are pending, so get-only batches cost no
    /// fsync. In non-sync mode this neither flushes nor syncs, matching
    /// the unbatched `append` path (durability deferred to rotation).
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.sync || self.pending_bytes == 0 {
            return Ok(());
        }
        let group_bytes = self.pending_bytes;
        self.pending_bytes = 0;
        self.writer.flush()?;
        if self.metrics.is_some() || trace::enabled() {
            let started = Instant::now();
            self.writer.get_ref().sync_data()?;
            let nanos = started.elapsed().as_nanos() as u64;
            if let Some(m) = &self.metrics {
                m.fsync_ns.record(nanos);
                m.fsyncs.inc();
            }
            trace::record_ending_now(trace::Category::WalFsync, group_bytes, nanos);
        } else {
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Flushes buffered appends to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Replays a WAL file, stopping cleanly at a torn tail.
    ///
    /// Returns the decoded operations in append order. A missing file
    /// yields an empty log.
    pub fn replay(path: &Path) -> io::Result<Vec<WalOp>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut ops = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = start + len;
            if end > data.len() {
                break; // Torn tail.
            }
            let payload = &data[start..end];
            if crc32c(payload) != crc {
                break; // Torn or corrupt tail.
            }
            if let Some(op) = decode_payload(payload) {
                ops.push(op);
            } else {
                break;
            }
            pos = end;
        }
        Ok(ops)
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    if payload.len() < 5 {
        return None;
    }
    let tag = payload[0];
    let klen = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
    if 5 + klen > payload.len() {
        return None;
    }
    let key = payload[5..5 + klen].to_vec();
    let rest = payload[5 + klen..].to_vec();
    match tag {
        OP_PUT => Some(WalOp::Put(key, rest)),
        OP_DELETE if rest.is_empty() => Some(WalOp::Delete(key)),
        OP_MERGE => Some(WalOp::Merge(key, rest)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-wal-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        let ops = vec![
            WalOp::Put(b"k1".to_vec(), b"v1".to_vec()),
            WalOp::Merge(b"k1".to_vec(), b"+x".to_vec()),
            WalOp::Delete(b"k1".to_vec()),
        ];
        {
            let mut wal = Wal::create(&path, false).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn.wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        // Truncate mid-record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Put(b"a".to_vec(), b"1".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc.wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&WalOp::Put(b"a".to_vec(), b"1".to_vec()))
                .unwrap();
            wal.append(&WalOp::Put(b"b".to_vec(), b"2".to_vec()))
                .unwrap();
            wal.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // Corrupt last record's payload.
        std::fs::write(&path, &data).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("never-created.wal");
        std::fs::remove_file(&path).ok();
        assert_eq!(Wal::replay(&path).unwrap(), Vec::new());
    }

    #[test]
    fn group_commit_amortizes_fsync() {
        let path = tmp("group.wal");
        let reg = MetricsRegistry::new();
        {
            let mut wal = Wal::create(&path, true).unwrap();
            wal.set_metrics(WalMetrics::registered(&reg));
            for i in 0..16u8 {
                wal.append_record(&WalOp::Put(vec![i], vec![i; 8])).unwrap();
            }
            wal.commit().unwrap();
            // An empty group costs nothing.
            wal.commit().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wal_appends"), Some(16));
        assert_eq!(snap.counter("wal_fsyncs"), Some(1));
        assert_eq!(Wal::replay(&path).unwrap().len(), 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_count_appends_and_fsyncs() {
        let path = tmp("metrics.wal");
        let reg = MetricsRegistry::new();
        let metrics = WalMetrics::registered(&reg);
        {
            let mut wal = Wal::create(&path, true).unwrap();
            wal.set_metrics(metrics.clone());
            wal.append(&WalOp::Put(b"key".to_vec(), b"value".to_vec()))
                .unwrap();
            wal.append(&WalOp::Delete(b"key".to_vec())).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wal_appends"), Some(2));
        assert_eq!(snap.counter("wal_fsyncs"), Some(2));
        // Framing (8 bytes) + tag (1) + klen (4) + key + value, per op.
        assert_eq!(snap.counter("wal_bytes"), Some(21 + 16));
        assert_eq!(metrics.fsync_ns.count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
