//! A sharded LRU block cache.
//!
//! Caches decoded SSTable data blocks keyed by `(file number, block
//! offset)`. The cache is sharded 16 ways to reduce lock contention when
//! multiple operator tasks share one store (paper §6.4). Each shard keeps an
//! exact LRU order via a monotone recency counter and a `BTreeMap` recency
//! index — O(log n) per touch, which is dwarfed by block decode costs.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gadget_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

/// Cache key: file number and block offset within the file.
pub type BlockKey = (u64, u64);

/// A cached, decoded data block.
pub type Block = Arc<Vec<u8>>;

#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, (Block, u64)>,
    recency: BTreeMap<u64, BlockKey>,
    bytes: usize,
}

/// A sharded LRU cache of data blocks with a global byte budget.
///
/// Besides hit/miss accounting the cache also counts bloom-filter
/// negatives for the whole read path ([`BlockCache::note_bloom_negative`]):
/// the cache handle is already threaded through every SSTable probe, so
/// it doubles as the read path's metrics carrier without widening any
/// signatures.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    tick: AtomicU64,
    hits: Counter,
    misses: Counter,
    bloom_negatives: Counter,
}

const NUM_SHARDS: usize = 16;

impl BlockCache {
    /// Creates a cache holding at most `capacity_bytes` of block data.
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard_budget = (capacity_bytes / NUM_SHARDS).max(1);
        BlockCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard_budget,
            tick: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            bloom_negatives: Counter::new(),
        }
    }

    /// Creates a cache whose counters are registered in `registry` as
    /// `block_cache_hits` / `block_cache_misses` / `bloom_negatives`.
    pub fn registered(capacity_bytes: usize, registry: &MetricsRegistry) -> Self {
        let mut cache = BlockCache::new(capacity_bytes);
        cache.hits = registry.counter("block_cache_hits");
        cache.misses = registry.counter("block_cache_misses");
        cache.bloom_negatives = registry.counter("bloom_negatives");
        cache
    }

    fn shard_for(&self, key: &BlockKey) -> &Mutex<Shard> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1;
        &self.shards[(h as usize) % NUM_SHARDS]
    }

    /// Looks up a block, refreshing its recency on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Block> {
        let mut shard = self.shard_for(key).lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some((block, rec)) = shard.map.get_mut(key) {
            let block = block.clone();
            let old = *rec;
            *rec = tick;
            shard.recency.remove(&old);
            shard.recency.insert(tick, *key);
            self.hits.inc();
            Some(block)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Records a read answered negatively by a bloom filter (no block
    /// access needed at all).
    pub fn note_bloom_negative(&self) {
        self.bloom_negatives.inc();
    }

    /// Inserts a block, evicting least-recently-used blocks if the shard
    /// exceeds its byte budget.
    pub fn insert(&self, key: BlockKey, block: Block) {
        let mut shard = self.shard_for(&key).lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some((old_block, old_rec)) = shard.map.insert(key, (block.clone(), tick)) {
            shard.bytes -= old_block.len();
            shard.recency.remove(&old_rec);
        }
        shard.bytes += block.len();
        shard.recency.insert(tick, key);
        while shard.bytes > self.per_shard_budget && shard.map.len() > 1 {
            let (&oldest, &victim) = match shard.recency.iter().next() {
                Some(kv) => kv,
                None => break,
            };
            shard.recency.remove(&oldest);
            if let Some((evicted, _)) = shard.map.remove(&victim) {
                shard.bytes -= evicted.len();
            }
        }
    }

    /// Drops every cached block belonging to `file` (called when an SSTable
    /// is deleted by compaction).
    pub fn evict_file(&self, file: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let victims: Vec<(u64, BlockKey)> = shard
                .recency
                .iter()
                .filter(|(_, k)| k.0 == file)
                .map(|(&r, &k)| (r, k))
                .collect();
            for (r, k) in victims {
                shard.recency.remove(&r);
                if let Some((evicted, _)) = shard.map.remove(&k) {
                    shard.bytes -= evicted.len();
                }
            }
        }
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Reads answered negatively by bloom filters since creation.
    pub fn bloom_negatives(&self) -> u64 {
        self.bloom_negatives.get()
    }

    /// Total bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: usize) -> Block {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn get_after_insert_hits() {
        let c = BlockCache::new(1 << 20);
        c.insert((1, 0), blk(100));
        assert!(c.get(&(1, 0)).is_some());
        assert!(c.get(&(1, 4096)).is_none());
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn eviction_respects_budget() {
        let c = BlockCache::new(NUM_SHARDS * 1_000);
        for i in 0..200u64 {
            c.insert((1, i), blk(100));
        }
        assert!(c.bytes() <= NUM_SHARDS * 1_000 + 100 * NUM_SHARDS);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let c = BlockCache::new(NUM_SHARDS); // Tiny: each shard holds ~1 block.
        c.insert((1, 0), blk(4));
        c.insert((1, 0), blk(4)); // Re-insert same key must not double count.
        assert!(c.get(&(1, 0)).is_some());
    }

    #[test]
    fn evict_file_purges_only_that_file() {
        let c = BlockCache::new(1 << 20);
        c.insert((1, 0), blk(10));
        c.insert((2, 0), blk(10));
        c.evict_file(1);
        assert!(c.get(&(1, 0)).is_none());
        assert!(c.get(&(2, 0)).is_some());
    }

    #[test]
    fn registered_counters_feed_the_registry() {
        let reg = MetricsRegistry::new();
        let c = BlockCache::registered(1 << 20, &reg);
        c.insert((1, 0), blk(8));
        c.get(&(1, 0));
        c.get(&(9, 9));
        c.note_bloom_negative();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("block_cache_hits"), Some(1));
        assert_eq!(snap.counter("block_cache_misses"), Some(1));
        assert_eq!(snap.counter("bloom_negatives"), Some(1));
        assert_eq!(c.bloom_negatives(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = Arc::new(BlockCache::new(1 << 16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    c.insert((t, i), blk(64));
                    c.get(&(t, i.saturating_sub(1)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
