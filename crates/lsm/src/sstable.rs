//! SSTable files: the on-disk sorted runs of the LSM tree.
//!
//! # File layout
//!
//! ```text
//! [data block]*            records, ~block_bytes each
//! [bloom filter block]     serialized BloomFilter (may be empty)
//! [index block]            (first_key, offset, len) per data block
//! [footer]                 fixed 56 bytes: offsets, counts, crc, magic
//! ```
//!
//! Each record is `[tag u8][klen u16][vlen u32][key][value]` where tag is
//! put/delete/merge. Merge records hold a length-prefixed operand list so
//! unresolved merges survive flushes without being folded.
//!
//! Readers keep the index and Bloom filter resident and fetch data blocks
//! through the shared [`BlockCache`].

use std::fs::File;
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use crate::bloom::BloomFilter;
use crate::cache::{Block, BlockCache};
use crate::crc::crc32c;
use crate::memtable::{fold_merge, FlushEntry, Lookup};

const MAGIC: u64 = 0x6761_6467_6574_5353; // "gadgetSS"
const FOOTER_LEN: usize = 56;

const TAG_PUT: u8 = 0;
const TAG_DELETE: u8 = 1;
const TAG_MERGE: u8 = 2;

/// Serializes one record into `out`.
fn encode_record(out: &mut Vec<u8>, key: &[u8], entry: &FlushEntry) {
    let (tag, value) = match entry {
        FlushEntry::Put(v) => (TAG_PUT, v.to_vec()),
        FlushEntry::Delete => (TAG_DELETE, Vec::new()),
        FlushEntry::Merge(ops) => {
            let mut v = Vec::with_capacity(4 + ops.iter().map(|o| o.len() + 4).sum::<usize>());
            v.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                v.extend_from_slice(&(op.len() as u32).to_le_bytes());
                v.extend_from_slice(op);
            }
            (TAG_MERGE, v)
        }
    };
    out.push(tag);
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&value);
}

/// Decodes the record starting at `pos`; returns `(key, entry, next_pos)`.
fn decode_record(block: &[u8], pos: usize) -> io::Result<(&[u8], FlushEntry, usize)> {
    let fail = || io::Error::new(io::ErrorKind::InvalidData, "truncated sstable record");
    if pos + 7 > block.len() {
        return Err(fail());
    }
    let tag = block[pos];
    let klen = u16::from_le_bytes(block[pos + 1..pos + 3].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(block[pos + 3..pos + 7].try_into().unwrap()) as usize;
    let kstart = pos + 7;
    let vstart = kstart + klen;
    let end = vstart + vlen;
    if end > block.len() {
        return Err(fail());
    }
    let key = &block[kstart..vstart];
    let value = &block[vstart..end];
    let entry = match tag {
        TAG_PUT => FlushEntry::Put(Bytes::copy_from_slice(value)),
        TAG_DELETE => FlushEntry::Delete,
        TAG_MERGE => {
            if value.len() < 4 {
                return Err(fail());
            }
            let count = u32::from_le_bytes(value[0..4].try_into().unwrap()) as usize;
            let mut ops = Vec::with_capacity(count);
            let mut p = 4;
            for _ in 0..count {
                if p + 4 > value.len() {
                    return Err(fail());
                }
                let len = u32::from_le_bytes(value[p..p + 4].try_into().unwrap()) as usize;
                p += 4;
                if p + len > value.len() {
                    return Err(fail());
                }
                ops.push(Bytes::copy_from_slice(&value[p..p + len]));
                p += len;
            }
            FlushEntry::Merge(ops)
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad record tag")),
    };
    Ok((key, entry, end))
}

/// One index entry: the first key of a data block and its extent.
#[derive(Debug, Clone)]
struct IndexEntry {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
}

/// Writes a sorted stream of records into an SSTable file.
pub struct TableWriter {
    file: File,
    path: PathBuf,
    block_bytes: usize,
    buf: Vec<u8>,
    offset: u64,
    index: Vec<IndexEntry>,
    block_first_key: Option<Vec<u8>>,
    bloom: Option<BloomFilter>,
    smallest: Option<Vec<u8>>,
    largest: Option<Vec<u8>>,
    num_entries: u64,
    tombstones: u64,
}

impl TableWriter {
    /// Creates a writer. `expected_keys` sizes the Bloom filter.
    pub fn create(
        path: &Path,
        block_bytes: usize,
        bloom_bits_per_key: u32,
        expected_keys: usize,
    ) -> io::Result<Self> {
        Ok(TableWriter {
            file: File::create(path)?,
            path: path.to_path_buf(),
            block_bytes: block_bytes.max(64),
            buf: Vec::with_capacity(block_bytes * 2),
            offset: 0,
            index: Vec::new(),
            block_first_key: None,
            bloom: BloomFilter::new(expected_keys, bloom_bits_per_key),
            smallest: None,
            largest: None,
            num_entries: 0,
            tombstones: 0,
        })
    }

    /// Appends one record. Keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], entry: &FlushEntry) -> io::Result<()> {
        debug_assert!(
            self.largest.as_deref().is_none_or(|l| l < key),
            "keys must be added in strictly increasing order"
        );
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest = Some(key.to_vec());
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.to_vec());
        }
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(key);
        }
        if matches!(entry, FlushEntry::Delete) {
            self.tombstones += 1;
        }
        self.num_entries += 1;
        encode_record(&mut self.buf, key, entry);
        if self.buf.len() >= self.block_bytes {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let first_key = self
            .block_first_key
            .take()
            .expect("non-empty block has a first key");
        self.index.push(IndexEntry {
            first_key,
            offset: self.offset,
            len: self.buf.len() as u32,
        });
        self.file.write_all(&self.buf)?;
        self.offset += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Finalizes the file and returns its metadata handle.
    pub fn finish(mut self, file_no: u64) -> io::Result<TableHandle> {
        self.finish_block()?;
        let bloom_bytes = self
            .bloom
            .as_ref()
            .map(|b| b.to_bytes())
            .unwrap_or_default();
        let bloom_offset = self.offset;
        self.file.write_all(&bloom_bytes)?;
        self.offset += bloom_bytes.len() as u64;

        let mut index_bytes = Vec::new();
        for e in &self.index {
            index_bytes.extend_from_slice(&(e.first_key.len() as u16).to_le_bytes());
            index_bytes.extend_from_slice(&e.first_key);
            index_bytes.extend_from_slice(&e.offset.to_le_bytes());
            index_bytes.extend_from_slice(&e.len.to_le_bytes());
        }
        let index_offset = self.offset;
        self.file.write_all(&index_bytes)?;
        self.offset += index_bytes.len() as u64;

        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_offset.to_le_bytes());
        footer.extend_from_slice(&(bloom_bytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&self.num_entries.to_le_bytes());
        footer.extend_from_slice(&self.tombstones.to_le_bytes());
        let crc = crc32c(&footer);
        footer.extend_from_slice(&crc.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes()[..4]);
        debug_assert_eq!(footer.len(), FOOTER_LEN);
        self.file.write_all(&footer)?;
        self.file.sync_data()?;
        let size = self.offset + FOOTER_LEN as u64;
        let read_handle = File::open(&self.path)?;

        Ok(TableHandle {
            file_no,
            path: self.path,
            size,
            smallest: self.smallest.unwrap_or_default(),
            largest: self.largest.unwrap_or_default(),
            num_entries: self.num_entries,
            tombstones: self.tombstones,
            index: Arc::new(self.index),
            bloom: Arc::new(if bloom_bytes.is_empty() {
                None
            } else {
                BloomFilter::from_bytes(&bloom_bytes)
            }),
            file: Arc::new(read_handle),
            creation_seq: 0,
        })
    }
}

/// An open SSTable: resident metadata plus a shared read-only file handle.
#[derive(Clone)]
pub struct TableHandle {
    /// Monotone file number (newer files have larger numbers).
    pub file_no: u64,
    /// Path on disk.
    pub path: PathBuf,
    /// Total file size in bytes.
    pub size: u64,
    /// Smallest key in the file.
    pub smallest: Vec<u8>,
    /// Largest key in the file.
    pub largest: Vec<u8>,
    /// Number of records.
    pub num_entries: u64,
    /// Number of tombstone records (drives Lethe's compaction priority).
    pub tombstones: u64,
    index: Arc<Vec<IndexEntry>>,
    bloom: Arc<Option<BloomFilter>>,
    file: Arc<File>,
    /// Global operation sequence at creation time (set by the store; used
    /// to age tombstones for the Lethe policy).
    pub creation_seq: u64,
}

impl std::fmt::Debug for TableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHandle")
            .field("file_no", &self.file_no)
            .field("size", &self.size)
            .field("entries", &self.num_entries)
            .field("tombstones", &self.tombstones)
            .finish()
    }
}

impl TableHandle {
    /// Opens an existing SSTable file, reading its footer, index, and
    /// Bloom filter.
    pub fn open(path: &Path, file_no: u64) -> io::Result<Self> {
        let file = File::open(path)?;
        let size = file.metadata()?.len();
        if size < FOOTER_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sstable too small",
            ));
        }
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, size - FOOTER_LEN as u64)?;
        if footer[52..56] != MAGIC.to_le_bytes()[..4] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad sstable magic",
            ));
        }
        let crc_stored = u32::from_le_bytes(footer[48..52].try_into().unwrap());
        if crc32c(&footer[..48]) != crc_stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sstable footer crc mismatch",
            ));
        }
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let index_len = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let bloom_offset = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let bloom_len = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        let num_entries = u64::from_le_bytes(footer[32..40].try_into().unwrap());
        let tombstones = u64::from_le_bytes(footer[40..48].try_into().unwrap());

        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_bytes, index_offset)?;
        let mut index = Vec::new();
        let mut p = 0usize;
        while p < index_bytes.len() {
            if p + 2 > index_bytes.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated index",
                ));
            }
            let klen = u16::from_le_bytes(index_bytes[p..p + 2].try_into().unwrap()) as usize;
            p += 2;
            if p + klen + 12 > index_bytes.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated index",
                ));
            }
            let first_key = index_bytes[p..p + klen].to_vec();
            p += klen;
            let offset = u64::from_le_bytes(index_bytes[p..p + 8].try_into().unwrap());
            p += 8;
            let len = u32::from_le_bytes(index_bytes[p..p + 4].try_into().unwrap());
            p += 4;
            index.push(IndexEntry {
                first_key,
                offset,
                len,
            });
        }

        let bloom = if bloom_len > 0 {
            let mut bloom_bytes = vec![0u8; bloom_len as usize];
            file.read_exact_at(&mut bloom_bytes, bloom_offset)?;
            BloomFilter::from_bytes(&bloom_bytes)
        } else {
            None
        };

        let (smallest, largest) = if index.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            // Largest key requires scanning the last block.
            let smallest = index[0].first_key.clone();
            let last = index.last().unwrap();
            let mut block = vec![0u8; last.len as usize];
            file.read_exact_at(&mut block, last.offset)?;
            let mut pos = 0;
            let mut largest = Vec::new();
            while pos < block.len() {
                let (k, _, next) = decode_record(&block, pos)?;
                largest = k.to_vec();
                pos = next;
            }
            (smallest, largest)
        };

        // Reopen read-only for shared pread access.
        let file = File::open(path)?;
        Ok(TableHandle {
            file_no,
            path: path.to_path_buf(),
            size,
            smallest,
            largest,
            num_entries,
            tombstones,
            index: Arc::new(index),
            bloom: Arc::new(bloom),
            file: Arc::new(file),
            creation_seq: 0,
        })
    }

    /// Whether `key` could fall inside this table's key range.
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        !self.index.is_empty() && key >= self.smallest.as_slice() && key <= self.largest.as_slice()
    }

    /// Whether this table's range overlaps `[lo, hi]`.
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        !self.index.is_empty() && self.smallest.as_slice() <= hi && self.largest.as_slice() >= lo
    }

    fn read_block(&self, idx: usize, cache: &BlockCache) -> io::Result<Block> {
        let e = &self.index[idx];
        let cache_key = (self.file_no, e.offset);
        if let Some(block) = cache.get(&cache_key) {
            return Ok(block);
        }
        // Cache miss: the disk read + insert is the span that stalls
        // whichever foreground op triggered it.
        let _span = gadget_obs::trace::span(gadget_obs::trace::Category::CacheFill, e.len as u64);
        let mut buf = vec![0u8; e.len as usize];
        self.file.read_exact_at(&mut buf, e.offset)?;
        let block: Block = Arc::new(buf);
        cache.insert(cache_key, block.clone());
        Ok(block)
    }

    /// Point lookup within this table.
    pub fn get(&self, key: &[u8], cache: &BlockCache) -> io::Result<Lookup> {
        if !self.key_in_range(key) {
            return Ok(Lookup::NotFound);
        }
        if let Some(bloom) = self.bloom.as_ref() {
            if !bloom.may_contain(key) {
                cache.note_bloom_negative();
                return Ok(Lookup::NotFound);
            }
        }
        // Find the last block whose first key is <= key.
        let idx = match self
            .index
            .partition_point(|e| e.first_key.as_slice() <= key)
        {
            0 => return Ok(Lookup::NotFound),
            n => n - 1,
        };
        let block = self.read_block(idx, cache)?;
        let mut pos = 0;
        while pos < block.len() {
            let (k, entry, next) = decode_record(&block, pos)?;
            match k.cmp(key) {
                std::cmp::Ordering::Less => pos = next,
                std::cmp::Ordering::Equal => {
                    return Ok(match entry {
                        FlushEntry::Put(v) => Lookup::Value(v),
                        FlushEntry::Delete => Lookup::Deleted,
                        FlushEntry::Merge(ops) => Lookup::Operands(ops),
                    })
                }
                std::cmp::Ordering::Greater => return Ok(Lookup::NotFound),
            }
        }
        Ok(Lookup::NotFound)
    }

    /// Sequentially iterates every record (used by compaction).
    pub fn iter<'a>(&'a self, cache: &'a BlockCache) -> TableIterator<'a> {
        TableIterator {
            table: self,
            cache,
            block_idx: 0,
            block: None,
            pos: 0,
        }
    }
}

/// Sequential iterator over all records of a table, in key order.
pub struct TableIterator<'a> {
    table: &'a TableHandle,
    cache: &'a BlockCache,
    block_idx: usize,
    block: Option<Block>,
    pos: usize,
}

impl TableIterator<'_> {
    /// Returns the next `(key, entry)` pair, or `Ok(None)` at the end.
    #[allow(clippy::should_implement_trait)] // Fallible iterator.
    pub fn next(&mut self) -> io::Result<Option<(Vec<u8>, FlushEntry)>> {
        loop {
            if self.block.is_none() {
                if self.block_idx >= self.table.index.len() {
                    return Ok(None);
                }
                self.block = Some(self.table.read_block(self.block_idx, self.cache)?);
                self.pos = 0;
            }
            let block = self.block.as_ref().expect("block loaded above").clone();
            if self.pos >= block.len() {
                self.block = None;
                self.block_idx += 1;
                continue;
            }
            let (k, entry, next) = decode_record(&block, self.pos)?;
            self.pos = next;
            return Ok(Some((k.to_vec(), entry)));
        }
    }
}

/// Folds a [`Lookup`] chain result with deeper data, used by multi-level
/// read paths: `acc` holds operands collected so far (newest levels first
/// in *application order*, i.e. oldest-first within each level and levels
/// prepended).
pub fn resolve_with(acc: &mut Vec<Bytes>, deeper: Lookup) -> Option<Option<Bytes>> {
    match deeper {
        Lookup::Value(v) => Some(Some(fold_merge(Some(&v), acc))),
        Lookup::Deleted => {
            // A bare tombstone means "absent"; only a merge stack above it
            // rebuilds a value from the empty base.
            if acc.is_empty() {
                Some(None)
            } else {
                Some(Some(fold_merge(None, acc)))
            }
        }
        Lookup::NotFound => None,
        Lookup::Operands(mut ops) => {
            ops.append(acc);
            *acc = ops;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-sst-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn build_table(path: &Path, n: u64) -> TableHandle {
        let mut w = TableWriter::create(path, 256, 10, n as usize).unwrap();
        for i in 0..n {
            let key = i.to_be_bytes();
            let entry = match i % 3 {
                0 => FlushEntry::Put(Bytes::from(format!("value-{i}"))),
                1 => FlushEntry::Delete,
                _ => FlushEntry::Merge(vec![Bytes::from(format!("op-{i}"))]),
            };
            w.add(&key, &entry).unwrap();
        }
        w.finish(1).unwrap()
    }

    #[test]
    fn write_read_all_tags() {
        let dir = tmpdir("rw");
        let path = dir.join("t1.sst");
        let t = build_table(&path, 300);
        let cache = BlockCache::new(1 << 20);
        assert_eq!(t.num_entries, 300);
        assert_eq!(t.tombstones, 100);
        for i in 0..300u64 {
            let got = t.get(&i.to_be_bytes(), &cache).unwrap();
            match i % 3 {
                0 => assert_eq!(got, Lookup::Value(Bytes::from(format!("value-{i}")))),
                1 => assert_eq!(got, Lookup::Deleted),
                _ => assert_eq!(got, Lookup::Operands(vec![Bytes::from(format!("op-{i}"))])),
            }
        }
        assert_eq!(
            t.get(&1_000u64.to_be_bytes(), &cache).unwrap(),
            Lookup::NotFound
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_matches_written_state() {
        let dir = tmpdir("reopen");
        let path = dir.join("t2.sst");
        let orig = build_table(&path, 100);
        let reopened = TableHandle::open(&path, 1).unwrap();
        assert_eq!(reopened.num_entries, orig.num_entries);
        assert_eq!(reopened.tombstones, orig.tombstones);
        assert_eq!(reopened.smallest, orig.smallest);
        assert_eq!(reopened.largest, orig.largest);
        let cache = BlockCache::new(1 << 20);
        assert_eq!(
            reopened.get(&0u64.to_be_bytes(), &cache).unwrap(),
            Lookup::Value(Bytes::from_static(b"value-0"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn iterator_visits_all_in_order() {
        let dir = tmpdir("iter");
        let path = dir.join("t3.sst");
        let t = build_table(&path, 250);
        let cache = BlockCache::new(1 << 20);
        let mut it = t.iter(&cache);
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some((k, _)) = it.next().unwrap() {
            if let Some(p) = &prev {
                assert!(*p < k, "iterator out of order");
            }
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 250);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_footer_is_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("t4.sst");
        build_table(&path, 50);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 10] ^= 0xFF; // Flip a bit inside the footer.
        std::fs::write(&path, &data).unwrap();
        assert!(TableHandle::open(&path, 1).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn range_checks() {
        let dir = tmpdir("range");
        let path = dir.join("t5.sst");
        let t = build_table(&path, 10);
        assert!(t.key_in_range(&5u64.to_be_bytes()));
        assert!(!t.key_in_range(&100u64.to_be_bytes()));
        assert!(t.overlaps(&3u64.to_be_bytes(), &20u64.to_be_bytes()));
        assert!(!t.overlaps(&20u64.to_be_bytes(), &30u64.to_be_bytes()));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resolve_with_folds_chains() {
        let mut acc = vec![Bytes::from_static(b"c")];
        // Deeper level contributes older operands.
        assert_eq!(
            resolve_with(&mut acc, Lookup::Operands(vec![Bytes::from_static(b"b")])),
            None
        );
        assert_eq!(
            acc,
            vec![Bytes::from_static(b"b"), Bytes::from_static(b"c")]
        );
        let out = resolve_with(&mut acc, Lookup::Value(Bytes::from_static(b"a")));
        assert_eq!(out, Some(Some(Bytes::from_static(b"abc"))));
        let mut acc2 = vec![Bytes::from_static(b"x")];
        assert_eq!(
            resolve_with(&mut acc2, Lookup::Deleted),
            Some(Some(Bytes::from_static(b"x")))
        );
        let mut acc3 = vec![Bytes::from_static(b"y")];
        assert_eq!(resolve_with(&mut acc3, Lookup::NotFound), None);
        // A tombstone with no operands above it resolves to "absent",
        // never to an empty value.
        let mut acc4 = Vec::new();
        assert_eq!(resolve_with(&mut acc4, Lookup::Deleted), Some(None));
    }
}
