//! LSM store configuration.

/// Delete-aware compaction policy (the Lethe substrate).
///
/// Lethe's FADE component bounds how long a tombstone may linger before the
/// file containing it is compacted, trading write amplification for prompt
/// space reclamation and faster scans over deleted ranges. We model the
/// threshold in *operations*: a tombstone written at operation `n` must be
/// compacted away by operation `n + delete_persistence_ops`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LethePolicy {
    /// Maximum number of subsequent write operations a tombstone may
    /// survive before its file becomes a priority compaction candidate.
    pub delete_persistence_ops: u64,
}

impl Default for LethePolicy {
    fn default() -> Self {
        // Roughly the paper's 10s threshold at its replay rates.
        LethePolicy {
            delete_persistence_ops: 100_000,
        }
    }
}

/// Configuration for [`LsmStore`](crate::LsmStore).
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Bytes of key+value data buffered in the active memtable before it is
    /// rotated out for flushing. Paper setup: two 128 MiB write buffers.
    pub memtable_bytes: usize,
    /// Maximum number of immutable memtables awaiting flush before writers
    /// stall.
    pub max_immutable_memtables: usize,
    /// Target uncompressed size of one SSTable data block.
    pub block_bytes: usize,
    /// Capacity of the block cache in bytes. Paper setup: 64 MiB.
    pub block_cache_bytes: usize,
    /// Bloom filter bits per key (0 disables filters).
    pub bloom_bits_per_key: u32,
    /// Number of L0 files that triggers an L0→L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Target size of L1 in bytes; level `i+1` targets `level_multiplier`
    /// times level `i`.
    pub l1_target_bytes: u64,
    /// Size ratio between adjacent levels.
    pub level_multiplier: u64,
    /// Number of levels (including L0).
    pub num_levels: usize,
    /// Target size of one SSTable produced by compaction.
    pub target_file_bytes: usize,
    /// Whether to write (and replay) a write-ahead log.
    pub wal: bool,
    /// Whether to fsync WAL appends. Off by default: the paper benchmarks
    /// stores with default durability settings, not synchronous commits.
    pub wal_sync: bool,
    /// Delete-aware compaction (Lethe). `None` means vanilla RocksDB-style
    /// behaviour.
    pub lethe: Option<LethePolicy>,
    /// Shard id when this instance is one shard of a
    /// `ShardedStore`. Names the background worker thread
    /// (`lsm-worker-<id>`) and tags its flush/compaction trace spans so
    /// attribution can blame a hot shard. `None` for standalone stores.
    pub shard_id: Option<u64>,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 128 << 20,
            max_immutable_memtables: 2,
            block_bytes: 4 << 10,
            block_cache_bytes: 64 << 20,
            bloom_bits_per_key: 10,
            l0_compaction_trigger: 4,
            l1_target_bytes: 256 << 20,
            level_multiplier: 10,
            num_levels: 7,
            target_file_bytes: 64 << 20,
            wal: true,
            wal_sync: false,
            lethe: None,
            shard_id: None,
        }
    }
}

impl LsmConfig {
    /// The paper's RocksDB configuration: two 128 MiB write buffers and a
    /// 64 MiB block cache (§6, experimental setup).
    pub fn paper_rocksdb() -> Self {
        LsmConfig::default()
    }

    /// The paper's Lethe configuration: RocksDB settings plus a delete
    /// persistence threshold.
    pub fn paper_lethe() -> Self {
        LsmConfig {
            lethe: Some(LethePolicy::default()),
            ..LsmConfig::default()
        }
    }

    /// A small configuration for unit tests: tiny memtables and cache so
    /// flushes and compactions happen after a few hundred writes.
    pub fn small() -> Self {
        LsmConfig {
            memtable_bytes: 16 << 10,
            max_immutable_memtables: 2,
            block_bytes: 1 << 10,
            block_cache_bytes: 64 << 10,
            bloom_bits_per_key: 10,
            l0_compaction_trigger: 4,
            l1_target_bytes: 64 << 10,
            level_multiplier: 10,
            num_levels: 5,
            target_file_bytes: 16 << 10,
            wal: true,
            wal_sync: false,
            lethe: None,
            shard_id: None,
        }
    }

    /// Returns this configuration tagged as shard `shard` of a sharded
    /// store (see [`LsmConfig::shard_id`]).
    pub fn with_shard_id(mut self, shard: u64) -> Self {
        self.shard_id = Some(shard);
        self
    }

    /// [`LsmConfig::small`] with Lethe's delete-aware compaction enabled
    /// and an aggressive (test-friendly) persistence threshold.
    pub fn small_lethe() -> Self {
        LsmConfig {
            lethe: Some(LethePolicy {
                delete_persistence_ops: 500,
            }),
            ..LsmConfig::small()
        }
    }

    /// Target size in bytes for level `level` (1-based below L0).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.l1_target_bytes
            .saturating_mul(self.level_multiplier.saturating_pow(level as u32 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_by_multiplier() {
        let cfg = LsmConfig::default();
        assert_eq!(cfg.level_target_bytes(1), 256 << 20);
        assert_eq!(cfg.level_target_bytes(2), (256 << 20) * 10);
        assert_eq!(cfg.level_target_bytes(3), (256 << 20) * 100);
    }

    #[test]
    fn presets_differ_only_where_expected() {
        let rocks = LsmConfig::paper_rocksdb();
        let lethe = LsmConfig::paper_lethe();
        assert!(rocks.lethe.is_none());
        assert!(lethe.lethe.is_some());
        assert_eq!(rocks.memtable_bytes, lethe.memtable_bytes);
    }
}
