//! The in-memory write buffer.
//!
//! A memtable absorbs writes in a sorted map until it reaches its
//! configured size, then becomes immutable and is flushed to an L0 SSTable
//! by the background worker.
//!
//! Merge handling follows RocksDB's model: operands are *stacked*, not
//! folded, so a `merge` costs O(operand) regardless of how large the
//! accumulated value already is. Operands are folded with their base value
//! only when a read needs the full value or when the memtable is flushed.

use std::collections::BTreeMap;

use bytes::Bytes;

/// Result of probing one level of the read path for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A definitive value.
    Value(Bytes),
    /// A definitive tombstone: the key is deleted.
    Deleted,
    /// Unresolved merge operands (oldest first); the reader must continue
    /// to older data and prepend whatever base it finds.
    Operands(Vec<Bytes>),
    /// This level knows nothing about the key.
    NotFound,
}

/// One entry in the memtable: the newest state of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEntry {
    /// Full value.
    Put(Bytes),
    /// Tombstone.
    Delete,
    /// Stacked merge operands (oldest first) over an optional base.
    Merge {
        /// Base value, if one was present in this memtable.
        base: Option<BaseRepr>,
        /// Operands in application (oldest-first) order.
        operands: Vec<Bytes>,
    },
}

/// The base beneath a stack of merge operands; see [`MemEntry::Merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseRepr {
    /// Merge on top of a full value.
    Value(Bytes),
    /// Merge on top of a tombstone (rebuild from empty).
    Tombstone,
}

/// Folds a base value and merge operands into the full value, using the
/// list-append merge operator.
pub fn fold_merge(base: Option<&[u8]>, operands: &[Bytes]) -> Bytes {
    let total = base.map_or(0, |b| b.len()) + operands.iter().map(|o| o.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    if let Some(b) = base {
        out.extend_from_slice(b);
    }
    for op in operands {
        out.extend_from_slice(op);
    }
    Bytes::from(out)
}

/// An in-memory sorted write buffer.
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Vec<u8>, MemEntry>,
    approximate_bytes: usize,
    /// Number of tombstones currently buffered (drives Lethe accounting).
    tombstones: u64,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Approximate bytes of buffered key and value data.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    /// Number of distinct keys buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tombstones buffered.
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Records a full-value write.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.approximate_bytes += key.len() + value.len() + 16;
        let entry = MemEntry::Put(Bytes::copy_from_slice(value));
        if let Some(MemEntry::Delete) = self.entries.insert(key.to_vec(), entry) {
            self.tombstones -= 1;
        }
    }

    /// Records a tombstone.
    pub fn delete(&mut self, key: &[u8]) {
        self.approximate_bytes += key.len() + 16;
        let prev = self.entries.insert(key.to_vec(), MemEntry::Delete);
        if !matches!(prev, Some(MemEntry::Delete)) {
            self.tombstones += 1;
        }
    }

    /// Records a merge operand on top of whatever the key's newest state
    /// in this memtable is.
    pub fn merge(&mut self, key: &[u8], operand: &[u8]) {
        self.approximate_bytes += key.len() + operand.len() + 16;
        let op = Bytes::copy_from_slice(operand);
        match self.entries.get_mut(key) {
            None => {
                self.entries.insert(
                    key.to_vec(),
                    MemEntry::Merge {
                        base: None,
                        operands: vec![op],
                    },
                );
            }
            Some(entry) => match entry {
                MemEntry::Merge { operands, .. } => operands.push(op),
                MemEntry::Put(v) => {
                    let base = BaseRepr::Value(std::mem::take(v));
                    *entry = MemEntry::Merge {
                        base: Some(base),
                        operands: vec![op],
                    };
                }
                MemEntry::Delete => {
                    self.tombstones -= 1;
                    *entry = MemEntry::Merge {
                        base: Some(BaseRepr::Tombstone),
                        operands: vec![op],
                    };
                }
            },
        }
    }

    /// Probes the memtable for a key.
    pub fn get(&self, key: &[u8]) -> Lookup {
        match self.entries.get(key) {
            None => Lookup::NotFound,
            Some(MemEntry::Put(v)) => Lookup::Value(v.clone()),
            Some(MemEntry::Delete) => Lookup::Deleted,
            Some(MemEntry::Merge { base, operands }) => match base {
                Some(BaseRepr::Value(v)) => Lookup::Value(fold_merge(Some(v), operands)),
                Some(BaseRepr::Tombstone) => Lookup::Value(fold_merge(None, operands)),
                None => Lookup::Operands(operands.clone()),
            },
        }
    }

    /// Iterates entries in key order for flushing, folding resolved merges.
    ///
    /// Yields `(key, FlushEntry)` where resolved merge stacks have been
    /// collapsed into full values (a full value shadows all older versions,
    /// so this is semantics-preserving), while unresolved stacks remain
    /// merge records that must keep their merge tag on disk.
    pub fn flush_iter(&self) -> impl Iterator<Item = (&[u8], FlushEntry)> + '_ {
        self.entries.iter().map(|(k, e)| {
            let fe = match e {
                MemEntry::Put(v) => FlushEntry::Put(v.clone()),
                MemEntry::Delete => FlushEntry::Delete,
                MemEntry::Merge { base, operands } => match base {
                    Some(BaseRepr::Value(v)) => FlushEntry::Put(fold_merge(Some(v), operands)),
                    Some(BaseRepr::Tombstone) => FlushEntry::Put(fold_merge(None, operands)),
                    None => FlushEntry::Merge(operands.clone()),
                },
            };
            (k.as_slice(), fe)
        })
    }
}

/// A memtable entry as written to an SSTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushEntry {
    /// Full value.
    Put(Bytes),
    /// Tombstone.
    Delete,
    /// Unresolved merge operands, oldest first.
    Merge(Vec<Bytes>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        assert_eq!(m.get(b"a"), Lookup::Value(Bytes::from_static(b"1")));
        assert_eq!(m.get(b"b"), Lookup::NotFound);
    }

    #[test]
    fn delete_shadows_put() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Lookup::Deleted);
        assert_eq!(m.tombstones(), 1);
    }

    #[test]
    fn merge_over_put_folds_on_read() {
        let mut m = MemTable::new();
        m.put(b"a", b"base");
        m.merge(b"a", b"+1");
        m.merge(b"a", b"+2");
        assert_eq!(m.get(b"a"), Lookup::Value(Bytes::from_static(b"base+1+2")));
    }

    #[test]
    fn merge_over_delete_rebuilds_from_empty() {
        let mut m = MemTable::new();
        m.put(b"a", b"old");
        m.delete(b"a");
        m.merge(b"a", b"new");
        assert_eq!(m.get(b"a"), Lookup::Value(Bytes::from_static(b"new")));
        assert_eq!(m.tombstones(), 0);
    }

    #[test]
    fn merge_without_base_reports_operands() {
        let mut m = MemTable::new();
        m.merge(b"a", b"x");
        m.merge(b"a", b"y");
        assert_eq!(
            m.get(b"a"),
            Lookup::Operands(vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")])
        );
    }

    #[test]
    fn flush_iter_is_sorted_and_folds() {
        let mut m = MemTable::new();
        m.put(b"b", b"2");
        m.put(b"a", b"1");
        m.merge(b"a", b"!");
        m.merge(b"c", b"tail");
        m.delete(b"d");
        let entries: Vec<(Vec<u8>, FlushEntry)> =
            m.flush_iter().map(|(k, e)| (k.to_vec(), e)).collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].0, b"a");
        assert_eq!(entries[0].1, FlushEntry::Put(Bytes::from_static(b"1!")));
        assert_eq!(entries[1].1, FlushEntry::Put(Bytes::from_static(b"2")));
        assert_eq!(
            entries[2].1,
            FlushEntry::Merge(vec![Bytes::from_static(b"tail")])
        );
        assert_eq!(entries[3].1, FlushEntry::Delete);
    }

    #[test]
    fn size_accounting_grows() {
        let mut m = MemTable::new();
        assert_eq!(m.approximate_bytes(), 0);
        m.put(b"abc", b"defgh");
        assert!(m.approximate_bytes() >= 8);
        let before = m.approximate_bytes();
        m.merge(b"abc", b"x");
        assert!(m.approximate_bytes() > before);
    }

    #[test]
    fn merge_cost_is_operand_sized() {
        // Merging onto a huge accumulated stack must not rewrite the stack.
        let mut m = MemTable::new();
        let big = vec![7u8; 1 << 20];
        m.put(b"k", &big);
        let start = std::time::Instant::now();
        for _ in 0..10_000 {
            m.merge(b"k", b"x");
        }
        // Generous bound: 10k operand-sized merges must be far below the
        // cost of 10k full-value rewrites (which would copy ~10 GB).
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }
}
