//! Property-based tests for the LSM components.

use bytes::Bytes;
use proptest::prelude::*;

use gadget_lsm::cache::BlockCache;
use gadget_lsm::memtable::{FlushEntry, Lookup, MemTable};
use gadget_lsm::sstable::{TableHandle, TableWriter};
use gadget_lsm::wal::{Wal, WalOp};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gadget-lsm-props-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{name}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Arbitrary sorted, deduplicated entries for an SSTable.
fn sorted_entries() -> impl Strategy<Value = Vec<(Vec<u8>, FlushEntry)>> {
    proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..24),
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..80)
                .prop_map(|v| FlushEntry::Put(Bytes::from(v))),
            Just(FlushEntry::Delete),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..4)
                .prop_map(|ops| FlushEntry::Merge(ops.into_iter().map(Bytes::from).collect())),
        ],
        1..120,
    )
    .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every record written to an SSTable reads back identically, both
    /// through point gets and through full iteration, and again after
    /// reopening the file from disk.
    #[test]
    fn sstable_roundtrip(entries in sorted_entries(), block_bytes in 64usize..2048) {
        let path = tmp("sst");
        let mut w = TableWriter::create(&path, block_bytes, 10, entries.len()).unwrap();
        for (k, e) in &entries {
            w.add(k, e).unwrap();
        }
        let table = w.finish(1).unwrap();
        let cache = BlockCache::new(1 << 16);

        for (k, e) in &entries {
            let got = table.get(k, &cache).unwrap();
            let expected = match e {
                FlushEntry::Put(v) => Lookup::Value(v.clone()),
                FlushEntry::Delete => Lookup::Deleted,
                FlushEntry::Merge(ops) => Lookup::Operands(ops.clone()),
            };
            prop_assert_eq!(got, expected);
        }

        // Reopen from disk and iterate: same entries, same order.
        let reopened = TableHandle::open(&path, 1).unwrap();
        prop_assert_eq!(reopened.num_entries, entries.len() as u64);
        let mut it = reopened.iter(&cache);
        let mut seen = Vec::new();
        while let Some((k, e)) = it.next().unwrap() {
            seen.push((k, e));
        }
        prop_assert_eq!(seen, entries);
        std::fs::remove_file(&path).ok();
    }

    /// WAL append/replay is lossless for arbitrary operation sequences.
    #[test]
    fn wal_roundtrip(
        ops in proptest::collection::vec(
            (0u8..3,
             proptest::collection::vec(any::<u8>(), 1..16),
             proptest::collection::vec(any::<u8>(), 0..48)),
            0..100,
        )
    ) {
        let ops: Vec<WalOp> = ops
            .into_iter()
            .map(|(tag, k, v)| match tag {
                0 => WalOp::Put(k, v),
                1 => WalOp::Delete(k),
                _ => WalOp::Merge(k, v),
            })
            .collect();
        let path = tmp("wal");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        prop_assert_eq!(Wal::replay(&path).unwrap(), ops);
        std::fs::remove_file(&path).ok();
    }

    /// The memtable agrees with a model: the last full write wins and
    /// merge operands stack in order.
    #[test]
    fn memtable_matches_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..8, proptest::collection::vec(any::<u8>(), 0..16)),
            1..200,
        )
    ) {
        let mut mem = MemTable::new();
        let mut model: std::collections::HashMap<u8, Option<Vec<u8>>> =
            std::collections::HashMap::new();
        for (tag, key, value) in &ops {
            let k = [*key];
            match tag {
                0 => {
                    mem.put(&k, value);
                    model.insert(*key, Some(value.clone()));
                }
                1 => {
                    mem.delete(&k);
                    model.insert(*key, None);
                }
                _ => {
                    mem.merge(&k, value);
                    let slot = model.entry(*key).or_insert(None);
                    match slot {
                        Some(existing) => existing.extend_from_slice(value),
                        None => *slot = Some(value.clone()),
                    }
                }
            }
        }
        for (key, expected) in model {
            let got = mem.get(&[key]);
            match (got, expected) {
                (Lookup::Value(v), Some(e)) => prop_assert_eq!(v.as_ref(), &e[..]),
                (Lookup::Deleted, None) => {}
                // Merge-without-base keys report operands; fold equals the
                // model value (delete-then-merge folds from empty).
                (Lookup::Operands(ops), Some(e)) => {
                    let folded: Vec<u8> =
                        ops.iter().flat_map(|o| o.iter().copied()).collect();
                    prop_assert_eq!(folded, e);
                }
                (got, expected) => {
                    prop_assert!(false, "key {key}: {got:?} vs model {expected:?}");
                }
            }
        }
    }
}
