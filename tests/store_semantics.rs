//! Differential store testing: every substrate must agree with the
//! in-memory reference store on arbitrary operation sequences, including
//! property-based random sequences.

use proptest::prelude::*;

use gadget::btree::{BTreeConfig, BTreeStore};
use gadget::hashlog::{HashLogConfig, HashLogStore};
use gadget::kv::{MemStore, StateStore};
use gadget::lsm::{LsmConfig, LsmStore};

/// One logical operation in a generated sequence.
#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Merge(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k % 64, v)),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 1..32))
            .prop_map(|(k, v)| Op::Merge(k % 64, v)),
        any::<u16>().prop_map(|k| Op::Delete(k % 64)),
        any::<u16>().prop_map(|k| Op::Get(k % 64)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a % 64, b % 64)),
    ]
}

fn key_bytes(k: u16) -> [u8; 8] {
    (k as u64).to_be_bytes()
}

/// Applies the sequence to both stores, asserting every get agrees, and
/// then asserts the full final keyspace agrees.
fn run_differential(ops: &[Op], store: &dyn StateStore, label: &str) {
    let oracle = MemStore::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Put(k, v) => {
                store.put(&key_bytes(*k), v).unwrap();
                oracle.put(&key_bytes(*k), v).unwrap();
            }
            Op::Merge(k, v) => {
                store.merge(&key_bytes(*k), v).unwrap();
                oracle.merge(&key_bytes(*k), v).unwrap();
            }
            Op::Delete(k) => {
                store.delete(&key_bytes(*k)).unwrap();
                oracle.delete(&key_bytes(*k)).unwrap();
            }
            Op::Get(k) => {
                let got = store.get(&key_bytes(*k)).unwrap();
                let expected = oracle.get(&key_bytes(*k)).unwrap();
                assert_eq!(got, expected, "{label}: get diverged at op {i} for key {k}");
            }
            Op::Scan(a, b) => {
                if !store.supports_scan() {
                    continue;
                }
                let (lo, hi) = (key_bytes((*a).min(*b)), key_bytes((*a).max(*b)));
                let got = store.scan(&lo, &hi).unwrap();
                let expected = oracle.scan(&lo, &hi).unwrap();
                assert_eq!(got, expected, "{label}: scan diverged at op {i}");
            }
        }
    }
    if store.supports_scan() {
        let full_got = store.scan(&key_bytes(0), &key_bytes(u16::MAX)).unwrap();
        let full_expected = oracle.scan(&key_bytes(0), &key_bytes(u16::MAX)).unwrap();
        assert_eq!(full_got, full_expected, "{label}: final full scan diverged");
    }
    for k in 0..64u16 {
        let got = store.get(&key_bytes(k)).unwrap();
        let expected = oracle.get(&key_bytes(k)).unwrap();
        assert_eq!(got, expected, "{label}: final state diverged for key {k}");
    }
}

fn fresh_lsm(name: &str) -> (LsmStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "gadget-difftest-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    (LsmStore::open(&dir, LsmConfig::small()).unwrap(), dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lsm_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let (store, dir) = fresh_lsm("lsm");
        run_differential(&ops, &store, "lsm");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lethe_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let dir = std::env::temp_dir().join(format!(
            "gadget-difftest-lethe-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LsmStore::open(&dir, LsmConfig::small_lethe()).unwrap();
        run_differential(&ops, &store, "lethe");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hashlog_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let store = HashLogStore::new(HashLogConfig::small());
        run_differential(&ops, &store, "hashlog");
    }

    #[test]
    fn btree_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let path = std::env::temp_dir().join(format!(
            "gadget-difftest-btree-{}-{}.db",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        let store = BTreeStore::open(&path, BTreeConfig::small()).unwrap();
        run_differential(&ops, &store, "btree");
        drop(store);
        std::fs::remove_file(&path).ok();
    }
}

/// A deterministic torture sequence that forces flushes and compactions in
/// the LSM while staying oracle-checked.
#[test]
fn lsm_differential_through_compactions() {
    let (store, dir) = fresh_lsm("torture");
    let oracle = MemStore::new();
    let mut x = 7u64;
    for i in 0..30_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = key_bytes((x % 512) as u16);
        match x % 10 {
            0..=4 => {
                let v = vec![(i % 251) as u8; (x % 200) as usize + 1];
                store.put(&k, &v).unwrap();
                oracle.put(&k, &v).unwrap();
            }
            5..=7 => {
                let v = vec![(i % 13) as u8; (x % 24) as usize + 1];
                store.merge(&k, &v).unwrap();
                oracle.merge(&k, &v).unwrap();
            }
            8 => {
                store.delete(&k).unwrap();
                oracle.delete(&k).unwrap();
            }
            _ => {
                assert_eq!(
                    store.get(&k).unwrap(),
                    oracle.get(&k).unwrap(),
                    "diverged at op {i}"
                );
            }
        }
    }
    store.compact_and_wait().unwrap();
    for k in 0..512u16 {
        assert_eq!(
            store.get(&key_bytes(k)).unwrap(),
            oracle.get(&key_bytes(k)).unwrap(),
            "post-compaction divergence at key {k}"
        );
    }
    let compactions: u64 = store
        .internal_counters()
        .iter()
        .filter(|(name, _)| name.starts_with("compactions"))
        .map(|(_, v)| *v)
        .sum();
    assert!(compactions > 0, "torture test never compacted");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
