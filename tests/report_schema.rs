//! `RunReport` wire-schema stability tests.
//!
//! The golden fixture under `tests/fixtures/` is the committed shape of
//! schema version 1: if an edit to `gadget-report` changes the JSON
//! form, the fixture test fails and forces a deliberate decision —
//! bump `SCHEMA_VERSION` (readers reject unknown versions) or fix the
//! accidental drift. Regenerate on purpose with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test report_schema
//! ```

use std::path::PathBuf;

use gadget::report::{ReshardRecord, RunMeta, RunReport, SCHEMA_VERSION};

/// A fully deterministic report: every field pinned, no clocks, no
/// environment probes — byte-stable across machines.
fn golden_report() -> RunReport {
    let mut m = gadget::replay::Measured::new();
    for i in 0..1_000u64 {
        let ns = 250 + (i % 211) * 13;
        m.overall.record(ns);
        m.per_op[(i % 3) as usize].record(ns);
    }
    m.hits = 400;
    m.misses = 34;
    m.executed = 1_000;
    for i in 0..1_000u64 {
        m.lag.record(40 + (i % 97) * 3);
        m.service.record(210 + (i % 211) * 13);
    }
    let mut run = m.to_report("mem", "ycsb-a", 0.25);
    run.arrival = Some("poisson".to_string());
    run.offered_rate = Some(5_000.0);
    let mut report = RunReport::from_run(
        &run,
        RunMeta {
            git_sha: "f00dfacef00dfacef00dfacef00dfacef00dface".to_string(),
            git_describe: "v0.1.0-12-gf00dface".to_string(),
            config_digest: "0123456789abcdef".to_string(),
            cpu_count: 16,
            threads: 2,
            shards: 4,
            batch_size: 64,
            transport: "embedded".to_string(),
            arrival: "closed".to_string(),
            offered_rate: 0.0,
            partition_digest: "0011223344556677".to_string(),
            reshard_events: vec![ReshardRecord {
                at_op: 500,
                from: 0,
                to: 4,
                slots: 315,
                keys: 213,
                pause_us: 92,
                copy_us: 2_480,
                map_version: 2,
            }],
            created_unix_ms: 1_750_000_000_000,
        },
    );
    report.metrics.push_counter("wal_fsyncs", 12);
    report.metrics.push_counter("flushes", 3);
    report.metrics.push_gauge("memtable_bytes", 65_536);
    let mut fsync = gadget::replay::LatencyHistogram::new();
    fsync.record(1_000_000);
    fsync.record(2_000_000);
    report
        .metrics
        .histograms
        .push(("fsync_ns".to_string(), fsync));
    report
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_report_v1.json")
}

#[test]
fn serialize_deserialize_reserialize_is_byte_identical() {
    let report = golden_report();
    let first = report.to_json();
    let parsed = RunReport::from_json(&first).expect("own output parses");
    assert_eq!(report, parsed, "value round-trip");
    let second = parsed.to_json();
    assert_eq!(first, second, "byte round-trip");
}

#[test]
fn unknown_fields_are_rejected_at_both_levels() {
    let json = golden_report().to_json();
    let top = json.replace("\"version\"", "\"extra\": true,\n  \"version\"");
    let err = RunReport::from_json(&top).unwrap_err();
    assert!(err.contains("unknown field `extra`"), "got: {err}");

    let nested = json.replace("\"git_sha\"", "\"hostname\": \"x\",\n    \"git_sha\"");
    let err = RunReport::from_json(&nested).unwrap_err();
    assert!(err.contains("unknown field `hostname`"), "got: {err}");
}

#[test]
fn other_schema_versions_are_rejected() {
    let json = golden_report()
        .to_json()
        .replace("\"version\": 1,", "\"version\": 2,");
    let err = RunReport::from_json(&json).unwrap_err();
    assert!(err.contains("unsupported report version 2"), "got: {err}");
    assert_eq!(SCHEMA_VERSION, 1, "fixture name tracks the version");
}

#[test]
fn pre_recovery_reports_still_parse() {
    // Committed baselines predate the crash harness and carry no
    // `recovery` field at all; they must keep loading as "no recovery
    // was measured".
    let json = golden_report()
        .to_json()
        .replace(",\n  \"recovery\": null", "");
    assert!(!json.contains("\"recovery\""), "field removed");
    let parsed = RunReport::from_json(&json).expect("old-shape report parses");
    assert_eq!(parsed.recovery, None);
}

#[test]
fn golden_fixture_guards_schema_drift() {
    let path = fixture_path();
    let current = golden_report().to_json();
    if std::env::var("UPDATE_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with UPDATE_FIXTURES=1 to create)",
            path.display()
        )
    });
    assert_eq!(
        committed, current,
        "RunReport wire format changed; if intentional, bump SCHEMA_VERSION \
         and regenerate with UPDATE_FIXTURES=1"
    );
    // And the committed bytes must still parse into an equal value.
    let parsed = RunReport::from_json(&committed).expect("fixture parses");
    assert_eq!(parsed, golden_report());
}
