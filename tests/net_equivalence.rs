//! Server/embedded equivalence property: for any op sequence and any
//! batch size, running through a real TCP round trip — `NetStore` →
//! wire protocol → `Server` → backend — must produce the same per-op
//! results and the same final state as calling the backend directly.
//! The network layer is a transport, never a semantic layer: values,
//! misses, and typed errors all survive serialization intact.

use std::sync::Arc;

use proptest::prelude::*;

use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{apply_ops_serially, MemStore, StateStore};
use gadget_server::{NetStore, Server, ServerConfig};
use gadget_types::Op;

/// Batch sizes under test: the point-op path (one frame per op) and a
/// batch big enough that many ops share one request frame.
const BATCH_SIZES: [usize; 2] = [1, 32];

/// Key universe: single-byte keys 0..12, small enough that sequences
/// revisit keys (overwrites, merge stacking, delete-then-get).
const KEYS: u8 = 12;

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// are a deterministic function of the op index.
fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..KEYS, 1u8..32), 1..200).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key];
                let payload = vec![(i * 29 + 11) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// Runs `ops` directly on one backend instance and, via a served
/// loopback deployment, on another instance of the same backend;
/// asserts identical per-op results and final state.
fn assert_net_equivalent<S: StateStore + 'static>(
    mk: impl Fn() -> S,
    ops: &[Op],
    batch: usize,
    label: &str,
) {
    let embedded = mk();
    let expect = apply_ops_serially(&embedded, ops).unwrap();

    let server = Server::start("127.0.0.1:0", Arc::new(mk()), ServerConfig::default()).unwrap();
    let net = NetStore::connect(&server.local_addr().to_string()).unwrap();

    let mut got = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(batch) {
        got.extend(net.apply_batch(chunk).unwrap());
    }
    assert_eq!(
        got, expect,
        "{label} batch={batch}: per-op results differ between served and embedded"
    );

    // Final-state equivalence via single gets over the wire.
    for key in 0..KEYS {
        let direct = embedded.get(&[key]).unwrap();
        let served = net.get(&[key]).unwrap();
        assert_eq!(
            served, direct,
            "{label} batch={batch}: final state differs at key {key}"
        );
    }

    server.stop().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn the_network_layer_is_semantically_invisible(ops in op_seq()) {
        for batch in BATCH_SIZES {
            assert_net_equivalent(MemStore::new, &ops, batch, "mem");
            assert_net_equivalent(
                || HashLogStore::new(HashLogConfig::small()),
                &ops,
                batch,
                "hashlog",
            );
        }
    }

    #[test]
    fn arbitrary_value_bytes_survive_the_wire(
        value in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Values containing frame-magic bytes, zeros, or length-like
        // prefixes must come back byte-identical: length-prefixed
        // framing means payload content can never confuse the codec.
        let server =
            Server::start("127.0.0.1:0", Arc::new(MemStore::new()), ServerConfig::default())
                .unwrap();
        let net = NetStore::connect(&server.local_addr().to_string()).unwrap();
        net.put(b"k", &value).unwrap();
        prop_assert_eq!(net.get(b"k").unwrap().as_deref(), Some(&value[..]));
        server.stop().unwrap();
    }
}
