//! Cross-crate integration tests: the full pipeline from event generation
//! through operator simulation to store replay.

use gadget::core::{GadgetConfig, GeneratorConfig, OperatorKind};
use gadget::datasets::DatasetSpec;
use gadget::kv::MemStore;
use gadget::replay::{ReplayOptions, TraceReplayer};
use gadget::types::{OpType, Trace};

fn synthetic(kind: OperatorKind, events: u64) -> GadgetConfig {
    GadgetConfig::synthetic(
        kind,
        GeneratorConfig {
            events,
            right_stream_fraction: if kind.is_two_input() { 0.5 } else { 0.0 },
            closing_fraction: if kind == OperatorKind::ContinuousJoin {
                0.05
            } else {
                0.0
            },
            ..GeneratorConfig::default()
        },
    )
}

#[test]
fn all_eleven_workloads_produce_replayable_traces() {
    for kind in OperatorKind::ALL {
        let trace = synthetic(kind, 3_000).run();
        assert!(
            trace.len() as u64 >= trace.input_events,
            "{}: trace shorter than input",
            kind.name()
        );
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(&trace, &store, kind.name())
            .expect("replay");
        assert_eq!(report.operations, trace.len() as u64, "{}", kind.name());
    }
}

#[test]
fn windowed_workloads_clean_their_state() {
    // Every windowed workload fires and deletes all its panes by
    // end-of-stream, so the store must end empty.
    for kind in [
        OperatorKind::TumblingIncr,
        OperatorKind::TumblingHol,
        OperatorKind::SlidingIncr,
        OperatorKind::SlidingHol,
        OperatorKind::SessionIncr,
        OperatorKind::SessionHol,
        OperatorKind::TumblingJoin,
        OperatorKind::SlidingJoin,
    ] {
        let trace = synthetic(kind, 3_000).run();
        let store = MemStore::new();
        TraceReplayer::default()
            .replay(&trace, &store, kind.name())
            .expect("replay");
        assert!(
            store.is_empty(),
            "{}: {} panes leaked",
            kind.name(),
            store.len()
        );
    }
}

#[test]
fn aggregation_state_equals_input_keyspace() {
    let trace = synthetic(OperatorKind::Aggregation, 5_000).run();
    let store = MemStore::new();
    TraceReplayer::default()
        .replay(&trace, &store, "aggregation")
        .expect("replay");
    assert_eq!(store.len() as u64, trace.input_distinct_keys);
}

#[test]
fn trace_files_roundtrip_through_disk_and_replay() {
    let dir = std::env::temp_dir().join(format!("gadget-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.gdt");

    let trace = synthetic(OperatorKind::SlidingIncr, 2_000).run();
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    assert_eq!(trace, loaded);

    let store = MemStore::new();
    let report = TraceReplayer::default()
        .replay(&loaded, &store, "x")
        .unwrap();
    assert_eq!(report.operations, trace.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_pipelines_run_on_all_single_input_operators() {
    for dataset in ["borg", "taxi", "azure"] {
        for kind in [
            OperatorKind::TumblingIncr,
            OperatorKind::SessionHol,
            OperatorKind::Aggregation,
        ] {
            let spec = DatasetSpec::small().with_events(5_000);
            let trace = GadgetConfig::dataset(kind, dataset, spec).run();
            assert!(!trace.is_empty(), "{dataset}/{}", kind.name());
            let stats = trace.stats();
            // Each access type fraction must be a valid probability and
            // the mix must sum to one.
            let sum: f64 = OpType::ALL.iter().map(|&op| stats.ratio(op)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{dataset}/{}", kind.name());
        }
    }
}

#[test]
fn replay_respects_max_ops_across_stores() {
    let trace = synthetic(OperatorKind::Aggregation, 3_000).run();
    let options = ReplayOptions {
        max_ops: Some(500),
        ..ReplayOptions::default()
    };
    let store = MemStore::new();
    let report = TraceReplayer::new(options)
        .replay(&trace, &store, "x")
        .unwrap();
    assert_eq!(report.operations, 500);
}

#[test]
fn online_and_offline_modes_agree() {
    let cfg = synthetic(OperatorKind::TumblingHol, 2_000);
    let offline = cfg.run();
    let store = MemStore::new();
    let online = gadget::replay::run_online(&cfg, &store, "hol").unwrap();
    assert_eq!(online.operations, offline.len() as u64);
    // Online mode also cleans up window state.
    assert!(store.is_empty());
}
