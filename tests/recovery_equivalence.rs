//! Recovery equivalence properties: durability is a semantic contract,
//! not a best effort.
//!
//! Two properties, checked against the reference `MemStore` model (the
//! same oracle the shard-equivalence suite trusts; merge is
//! append-concatenation in every backend):
//!
//! 1. **Crash-prefix equivalence** (sync-WAL LSM, sharded or not): for
//!    any op sequence, any batch size, and any crash point at a batch
//!    boundary, `simulate_crash()` + reopen must recover *exactly* the
//!    state of the acknowledged prefix — no acknowledged write lost, no
//!    phantom write surviving.
//! 2. **Checkpoint round-trip** (LSM, hashlog, btree): a checkpoint
//!    taken mid-sequence and restored into a fresh store must equal a
//!    never-crashed twin that stopped at the checkpoint — regardless of
//!    what the original store did afterwards.

use std::sync::Arc;

use proptest::prelude::*;

use gadget_btree::{BTreeConfig, BTreeStore};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{MemStore, ShardedStore, StateStore};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

const BATCH_SIZES: [usize; 2] = [1, 64];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const KEYS: u8 = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gadget-recovery-eq-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{name}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// are a deterministic function of the op index.
fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..KEYS, 1u8..32), 8..300).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key];
                let payload = vec![(i * 31 + 7) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// Applies `ops[..prefix]` to a fresh `MemStore` model and returns it.
fn model_of_prefix(ops: &[Op], prefix: usize) -> MemStore {
    let model = MemStore::new();
    for op in &ops[..prefix] {
        match op {
            Op::Get { .. } => {}
            Op::Put { key, value } => model.put(key, value).unwrap(),
            Op::Merge { key, operand } => model.merge(key, operand).unwrap(),
            Op::Delete { key } => model.delete(key).unwrap(),
        }
    }
    model
}

fn assert_state_matches(model: &MemStore, store: &dyn StateStore, label: &str) {
    for key in 0..KEYS {
        assert_eq!(
            store.get(&[key]).unwrap(),
            model.get(&[key]).unwrap(),
            "{label}: recovered state differs at key {key}"
        );
    }
}

fn sync_wal_cfg(shard: Option<u64>) -> LsmConfig {
    let cfg = LsmConfig {
        wal_sync: true,
        memtable_bytes: 2 << 10,
        ..LsmConfig::small()
    };
    match shard {
        Some(s) => cfg.with_shard_id(s),
        None => cfg,
    }
}

/// Property 1: crash + WAL replay recovers exactly the applied prefix.
fn check_crash_prefix(ops: &[Op], shards: usize, batch: usize) {
    let base = tmp(&format!("crash-{shards}-{batch}"));
    let dirs: Vec<_> = (0..shards)
        .map(|i| base.join(format!("shard-{i}")))
        .collect();
    let stores: Vec<Arc<LsmStore>> = dirs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            std::fs::create_dir_all(d).unwrap();
            Arc::new(LsmStore::open(d, sync_wal_cfg(Some(i as u64))).unwrap())
        })
        .collect();
    let front = ShardedStore::from_stores(
        stores
            .iter()
            .map(|s| s.clone() as Arc<dyn StateStore>)
            .collect(),
    )
    .unwrap();

    // Crash at a batch boundary roughly mid-sequence: everything before
    // it was acknowledged, nothing after it was issued.
    let crash_at = (ops.len() / 2 / batch.max(1)) * batch;
    for chunk in ops[..crash_at].chunks(batch) {
        front.apply_batch(chunk).unwrap();
    }
    for store in &stores {
        store.simulate_crash();
    }
    drop(front);
    drop(stores);

    let reopened: Vec<Arc<dyn StateStore>> = dirs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            Arc::new(LsmStore::open(d, sync_wal_cfg(Some(i as u64))).unwrap())
                as Arc<dyn StateStore>
        })
        .collect();
    let recovered = ShardedStore::from_stores(reopened).unwrap();
    assert_state_matches(
        &model_of_prefix(ops, crash_at),
        &recovered,
        &format!("lsm crash shards={shards} batch={batch} at={crash_at}"),
    );
}

/// Property 2: checkpoint/restore equals a never-crashed twin stopped
/// at the checkpoint, regardless of post-checkpoint activity.
fn check_checkpoint_roundtrip<S: StateStore>(
    mk: impl Fn(&str) -> S,
    ops: &[Op],
    batch: usize,
    label: &str,
) {
    let original = mk("orig");
    let checkpoint_at = (ops.len() / 2 / batch.max(1)) * batch;
    for chunk in ops[..checkpoint_at].chunks(batch) {
        original.apply_batch(chunk).unwrap();
    }
    let ckpt = tmp(&format!("ckpt-{label}-{batch}"));
    original.checkpoint(&ckpt).unwrap();
    // Post-checkpoint writes must not leak into the restored state.
    for chunk in ops[checkpoint_at..].chunks(batch) {
        original.apply_batch(chunk).unwrap();
    }

    let restored = mk("restored");
    restored.restore(&ckpt).unwrap();
    assert_state_matches(
        &model_of_prefix(ops, checkpoint_at),
        &restored,
        &format!("{label} checkpoint batch={batch} at={checkpoint_at}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sync_wal_crash_recovers_exactly_the_acknowledged_prefix(ops in op_seq()) {
        for shards in SHARD_COUNTS {
            for batch in BATCH_SIZES {
                check_crash_prefix(&ops, shards, batch);
            }
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-recovery-eq-{}", std::process::id())),
        );
    }

    #[test]
    fn checkpoint_restore_equals_never_crashed_twin(ops in op_seq()) {
        for batch in BATCH_SIZES {
            check_checkpoint_roundtrip(
                |tag| {
                    let dir = tmp(&format!("lsm-{tag}"));
                    std::fs::create_dir_all(&dir).unwrap();
                    LsmStore::open(&dir, sync_wal_cfg(None)).unwrap()
                },
                &ops,
                batch,
                "lsm",
            );
            check_checkpoint_roundtrip(
                |_| HashLogStore::new(HashLogConfig::small()),
                &ops,
                batch,
                "hashlog",
            );
            check_checkpoint_roundtrip(
                |tag| {
                    BTreeStore::open(tmp(&format!("btree-{tag}.db")), BTreeConfig::small())
                        .unwrap()
                },
                &ops,
                batch,
                "btree",
            );
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-recovery-eq-{}", std::process::id())),
        );
    }
}
