//! Qualitative reproduction tests: the paper's major findings must hold
//! at CI scale. These are the "shape" claims — who wins, what amplifies,
//! which distributions diverge — not absolute numbers.

use gadget::analysis::{
    key_sequence, ks_test, rank_normalize, shuffled_keys, stack_distances, ttl_distribution,
    unique_sequences,
};
use gadget::core::{Driver, GadgetConfig, OperatorKind};
use gadget::datasets::DatasetSpec;
use gadget::flinksim::run_reference;
use gadget::kv::MemStore;
use gadget::types::OpType;
use gadget::ycsb::{RequestDistribution, YcsbConfig};

fn spec() -> DatasetSpec {
    DatasetSpec::small().with_events(20_000)
}

/// Finding 2: "streaming state access workloads exhibit high event and
/// key amplification".
#[test]
fn finding_amplification() {
    for kind in [
        OperatorKind::TumblingIncr,
        OperatorKind::SlidingIncr,
        OperatorKind::IntervalJoin,
        OperatorKind::Aggregation,
    ] {
        let stats = GadgetConfig::dataset(kind, "borg", spec()).run().stats();
        let amp = stats.event_amplification().unwrap();
        assert!(amp >= 2.0, "{}: event amplification {amp}", kind.name());
    }
    // Sliding windows amplify by ~length/slide more than tumbling.
    let tumbling = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec())
        .run()
        .stats()
        .event_amplification()
        .unwrap();
    let sliding = GadgetConfig::dataset(OperatorKind::SlidingIncr, "borg", spec())
        .run()
        .stats()
        .event_amplification()
        .unwrap();
    assert!(
        sliding > 3.0 * tumbling,
        "sliding {sliding} vs tumbling {tumbling}"
    );
    // Continuous aggregation is the only operator that preserves keyspace.
    let agg = GadgetConfig::dataset(OperatorKind::Aggregation, "borg", spec())
        .run()
        .stats();
    assert_eq!(agg.key_amplification(), Some(1.0));
}

/// Table 2: all operators distort the input key distribution except
/// continuous aggregation.
#[test]
fn finding_only_aggregation_preserves_distribution() {
    for (kind, expect_reject) in [
        (OperatorKind::Aggregation, false),
        (OperatorKind::TumblingIncr, true),
        (OperatorKind::SlidingIncr, true),
        (OperatorKind::IntervalJoin, true),
    ] {
        let cfg = GadgetConfig::dataset(kind, "borg", spec());
        let input: Vec<u128> = cfg
            .build_stream()
            .iter()
            .filter_map(|el| el.as_event())
            .map(|e| e.key as u128)
            .collect();
        let trace = cfg.run();
        let state: Vec<u128> = trace.iter().map(|a| a.key.as_u128()).collect();
        let r = ks_test(&rank_normalize(&input), &rank_normalize(&state));
        assert_eq!(
            r.rejects(0.001),
            expect_reject,
            "{}: D={} p={}",
            kind.name(),
            r.d,
            r.p_value
        );
    }
}

/// Finding (Fig. 5): real traces have far higher temporal and spatial
/// locality than their shuffled counterparts.
#[test]
fn finding_locality_beats_shuffled() {
    for kind in [OperatorKind::Aggregation, OperatorKind::TumblingIncr] {
        let trace = GadgetConfig::dataset(kind, "borg", spec()).run();
        let keys = key_sequence(&trace);
        let shuffled = shuffled_keys(&keys, 1);
        let real_sd = stack_distances(&keys, None).mean;
        let shuf_sd = stack_distances(&shuffled, None).mean;
        assert!(
            real_sd * 5.0 < shuf_sd,
            "{}: real {real_sd} vs shuffled {shuf_sd}",
            kind.name()
        );
        let real_seq = unique_sequences(&keys, 10).total();
        let shuf_seq = unique_sequences(&shuffled, 10).total();
        assert!(real_seq < shuf_seq, "{}", kind.name());
    }
}

/// Finding 3 (§4 / Table 3): tuned YCSB cannot reproduce streaming TTLs —
/// real keys die orders of magnitude sooner.
#[test]
fn finding_ycsb_ttls_are_too_long() {
    let trace = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec()).run();
    let stats = trace.stats();
    let ycsb = YcsbConfig {
        record_count: stats.distinct_keys,
        operation_count: stats.total,
        read_proportion: stats.ratio(OpType::Get),
        update_proportion: 1.0 - stats.ratio(OpType::Get),
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        distribution: RequestDistribution::Latest,
        value_size: 256,
        seed: 7,
    }
    .generate();

    let real_ttl = ttl_distribution(&key_sequence(&trace), None);
    let ycsb_ttl = ttl_distribution(&key_sequence(&ycsb), None);
    assert!(
        (real_ttl.percentile(50.0) + 1) * 50 < ycsb_ttl.percentile(50.0) + 1,
        "real p50 {} vs ycsb p50 {}",
        real_ttl.percentile(50.0),
        ycsb_ttl.percentile(50.0)
    );
}

/// §6.1 / Fig. 10: Gadget's simulated traces match the reference
/// execution exactly for deterministic operators.
#[test]
fn finding_gadget_traces_match_reference_execution() {
    for kind in [
        OperatorKind::Aggregation,
        OperatorKind::TumblingIncr,
        OperatorKind::TumblingHol,
        OperatorKind::SlidingIncr,
        OperatorKind::SlidingHol,
        OperatorKind::SessionIncr,
        OperatorKind::SessionHol,
        OperatorKind::SlidingJoin,
        OperatorKind::TumblingJoin,
        OperatorKind::ContinuousJoin,
    ] {
        let cfg = GadgetConfig::dataset(kind, "borg", spec());
        let stream = cfg.build_stream();
        let params = cfg.operator_params();
        let real =
            run_reference(kind, &params, stream.clone().into_iter(), MemStore::new()).unwrap();
        let simulated = Driver::new(kind.build(&params)).run(stream.into_iter());
        assert_eq!(
            simulated.key_sequence(),
            real.key_sequence(),
            "{}: key sequences diverge",
            kind.name()
        );
    }
}

/// §3.2.1: Taxi generates a much higher fraction of deletes than Borg for
/// windowed operators (its per-key arrival rate is lower).
#[test]
fn finding_taxi_deletes_exceed_borg() {
    let borg = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec())
        .run()
        .stats()
        .ratio(OpType::Delete);
    let taxi = GadgetConfig::dataset(OperatorKind::TumblingIncr, "taxi", spec())
        .run()
        .stats()
        .ratio(OpType::Delete);
    assert!(taxi > 1.5 * borg, "taxi {taxi} vs borg {borg}");
}

/// §3.2.1: holistic windows are write-heavy (merge-dominated), incremental
/// windows are update-heavy (balanced get/put).
#[test]
fn finding_composition_shapes() {
    let incr = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec())
        .run()
        .stats();
    assert!((incr.ratio(OpType::Get) - 0.5).abs() < 0.01);
    assert_eq!(incr.merges, 0);

    let hol = GadgetConfig::dataset(OperatorKind::TumblingHol, "borg", spec())
        .run()
        .stats();
    assert!(
        hol.ratio(OpType::Merge) > 0.5,
        "merge ratio {}",
        hol.ratio(OpType::Merge)
    );
    assert_eq!(hol.puts, 0);
    assert_eq!(hol.gets, hol.deletes, "one FGet per pane deletion");
}

/// Fig. 6: slower watermarks grow the working set.
#[test]
fn finding_watermark_frequency_grows_working_set() {
    use gadget::analysis::{working_set, working_set_series};
    use gadget::core::SourceConfig;
    let peak_for = |wm: u64| {
        let mut cfg = GadgetConfig::dataset(OperatorKind::TumblingIncr, "azure", spec());
        if let SourceConfig::Dataset {
            watermark_every, ..
        } = &mut cfg.source
        {
            *watermark_every = wm;
        }
        let trace = cfg.run();
        working_set::peak(&working_set_series(&key_sequence(&trace), 100))
    };
    let fast = peak_for(100);
    let slow = peak_for(1_000);
    assert!(
        slow as f64 > 1.3 * fast as f64,
        "slow {slow} vs fast {fast}"
    );
}
