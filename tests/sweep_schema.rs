//! `SweepReport` wire-schema stability tests.
//!
//! Mirrors `report_schema.rs` for latency–throughput curves: the golden
//! fixture under `tests/fixtures/` is the committed shape of sweep
//! schema version 1. Regenerate on purpose with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test sweep_schema
//! ```

use std::path::PathBuf;

use gadget::report::{
    compare_sweeps, KneePoint, RunMeta, RunReport, Status, SweepReport, SweepStep, Tolerance,
    SCHEMA_VERSION, SWEEP_SCHEMA_VERSION,
};

/// A fully deterministic three-step sweep: every field pinned, no
/// clocks, no environment probes — byte-stable across machines.
fn golden_sweep() -> SweepReport {
    let meta = RunMeta {
        git_sha: "f00dfacef00dfacef00dfacef00dfacef00dface".to_string(),
        git_describe: "v0.1.0-12-gf00dface".to_string(),
        config_digest: "0123456789abcdef".to_string(),
        cpu_count: 16,
        threads: 1,
        shards: 1,
        batch_size: 1,
        transport: "embedded".to_string(),
        arrival: "poisson".to_string(),
        offered_rate: 0.0,
        partition_digest: "8899aabbccddeeff".to_string(),
        reshard_events: Vec::new(),
        created_unix_ms: 1_750_000_000_000,
    };
    let mk_step = |rate: f64, sustainable: bool| {
        let mut latency = gadget::replay::LatencyHistogram::new();
        let mut lag = gadget::replay::LatencyHistogram::new();
        for i in 0..1_000u64 {
            latency.record(300 + (i % 151) * 17 + rate as u64 / 20);
            lag.record(60 + (i % 53) * 5);
        }
        let achieved = if sustainable { rate } else { rate * 0.72 };
        SweepStep {
            offered_rate: rate,
            achieved_rate: achieved,
            sustainable,
            report: RunReport {
                version: SCHEMA_VERSION,
                store: "mem".to_string(),
                workload: "ycsb-a".to_string(),
                meta: RunMeta {
                    offered_rate: rate,
                    ..meta.clone()
                },
                operations: 1_000,
                seconds: 1_000.0 / achieved,
                throughput: achieved,
                hits: 500,
                misses: 20,
                latency: latency.clone(),
                per_op: vec![("put".to_string(), latency)],
                lag,
                metrics: gadget::obs::MetricsSnapshot::new(),
                attribution: None,
                recovery: None,
                decomposition: Vec::new(),
            },
        }
    };
    let steps = vec![
        mk_step(2_000.0, true),
        mk_step(4_000.0, true),
        mk_step(8_000.0, false),
    ];
    let knee = Some(KneePoint {
        step_index: 1,
        offered_rate: 4_000.0,
        achieved_rate: 4_000.0,
        p99_ns: steps[1].report.latency.percentile(99.0),
    });
    SweepReport {
        version: SWEEP_SCHEMA_VERSION,
        store: "mem".to_string(),
        workload: "ycsb-a".to_string(),
        arrival: "poisson".to_string(),
        seed: 42,
        sustainable_fraction: 0.99,
        p99_bound_ns: 100_000_000,
        meta,
        steps,
        knee,
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sweep_report_v1.json")
}

#[test]
fn serialize_deserialize_reserialize_is_byte_identical() {
    let sweep = golden_sweep();
    let first = sweep.to_json();
    let parsed = SweepReport::from_json(&first).expect("own output parses");
    assert_eq!(sweep, parsed, "value round-trip");
    assert_eq!(first, parsed.to_json(), "byte round-trip");
}

#[test]
fn unknown_fields_are_rejected_at_every_level() {
    let json = golden_sweep().to_json();
    for (inject, site) in [
        ("\"version\"", "top level"),
        ("\"step_index\"", "knee"),
        ("\"offered_rate\": 2000", "step"),
    ] {
        let broken = json.replacen(inject, &format!("\"extra\": true, {inject}"), 1);
        let err = SweepReport::from_json(&broken).unwrap_err();
        assert!(err.contains("unknown field `extra`"), "{site}: got {err}");
    }
}

#[test]
fn other_sweep_versions_are_rejected() {
    let json = golden_sweep()
        .to_json()
        .replacen("\"version\": 1,", "\"version\": 7,", 1);
    let err = SweepReport::from_json(&json).unwrap_err();
    assert!(
        err.contains("unsupported sweep report version 7"),
        "got: {err}"
    );
    assert_eq!(SWEEP_SCHEMA_VERSION, 1, "fixture name tracks the version");
}

#[test]
fn absent_knee_round_trips_as_null() {
    let mut sweep = golden_sweep();
    sweep.knee = None;
    let json = sweep.to_json();
    assert!(json.contains("\"knee\": null"));
    let parsed = SweepReport::from_json(&json).unwrap();
    assert_eq!(parsed.knee, None);
}

#[test]
fn golden_fixture_guards_schema_drift() {
    let path = fixture_path();
    let current = golden_sweep().to_json();
    if std::env::var("UPDATE_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with UPDATE_FIXTURES=1 to create)",
            path.display()
        )
    });
    assert_eq!(
        committed, current,
        "SweepReport wire format changed; if intentional, bump \
         SWEEP_SCHEMA_VERSION and regenerate with UPDATE_FIXTURES=1"
    );
    let parsed = SweepReport::from_json(&committed).expect("fixture parses");
    assert_eq!(parsed, golden_sweep());
}

#[test]
fn curve_compare_gates_on_the_fixture() {
    // The committed fixture must PASS against itself and REGRESSED
    // against a knee-shifted copy — the exact contract the CI
    // sweep-smoke job relies on.
    let sweep = golden_sweep();
    let same = compare_sweeps(&sweep, &sweep.clone(), "a", "b", &Tolerance::default());
    assert_eq!(same.status, Status::Pass, "{}", same.to_table());

    let mut shifted = golden_sweep();
    shifted.knee = Some(KneePoint {
        step_index: 0,
        offered_rate: 2_000.0,
        achieved_rate: 2_000.0,
        p99_ns: shifted.steps[0].report.latency.percentile(99.0),
    });
    let cmp = compare_sweeps(&sweep, &shifted, "a", "b", &Tolerance::default());
    assert!(cmp.regressed(), "{}", cmp.to_table());
}
