//! Shard/unsharded equivalence property: for any op sequence, any shard
//! count, and any batch size, a `ShardedStore` over N instances of a
//! backend must produce the same per-op results and final state as one
//! unsharded instance of that backend — and each shard must see exactly
//! the serial trace's projection onto its keyspace, in order. Sharding
//! is a parallelism optimization, never a semantic one.

use std::sync::Arc;

use proptest::prelude::*;

use gadget_btree::{BTreeConfig, BTreeStore};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{
    apply_ops_serially, shard_of, InstrumentedStore, MemStore, ShardedStore, StateStore,
};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

/// Shard counts under test: degenerate, even split, prime (never aligns
/// with the key universe), and the bench sweep's maximum.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 8];

/// Batch sizes under test: the point-op path and a batch large enough
/// that the sharded store fans sub-batches out to worker threads.
const BATCH_SIZES: [usize; 2] = [1, 64];

/// Key universe: single-byte keys 0..16, small enough that sequences
/// revisit keys (overwrites, merge stacking, delete-then-get).
const KEYS: u8 = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gadget-shard-eq-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{name}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// are a deterministic function of the op index.
fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..KEYS, 1u8..32), 1..300).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key];
                let payload = vec![(i * 31 + 7) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// Runs `ops` on one unsharded instance and on a `shards`-way
/// `ShardedStore` of the same backend (every inner store instrumented),
/// asserting identical per-op results, per-shard trace projections, and
/// final state. `mk(i)` builds instance `i` (`usize::MAX` = baseline).
fn assert_equivalent<S: StateStore + 'static>(
    mk: impl Fn(usize) -> S,
    ops: &[Op],
    shards: usize,
    batch: usize,
    label: &str,
) {
    let baseline = InstrumentedStore::new(mk(usize::MAX));
    let expect = apply_ops_serially(&baseline, ops).unwrap();

    let inners: Vec<Arc<InstrumentedStore<S>>> = (0..shards)
        .map(|i| Arc::new(InstrumentedStore::new(mk(i))))
        .collect();
    let sharded = ShardedStore::from_stores(
        inners
            .iter()
            .map(|s| s.clone() as Arc<dyn StateStore>)
            .collect(),
    )
    .unwrap();

    let mut got = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(batch) {
        got.extend(sharded.apply_batch(chunk).unwrap());
    }
    assert_eq!(
        got, expect,
        "{label} shards={shards} batch={batch}: per-op results differ"
    );

    // Trace equivalence: ops and recorded accesses are 1:1 in order, so
    // shard `i`'s trace must equal the subsequence of the baseline trace
    // whose op keys route to `i` — per-key order preserved exactly.
    let full = baseline.take_trace().accesses;
    assert_eq!(full.len(), ops.len());
    for (i, inner) in inners.iter().enumerate() {
        let projected: Vec<_> = ops
            .iter()
            .zip(&full)
            .filter(|(op, _)| shard_of(op.key(), shards) == i)
            .map(|(_, access)| *access)
            .collect();
        assert_eq!(
            inner.take_trace().accesses,
            projected,
            "{label} shards={shards} batch={batch}: shard {i} trace is not the serial projection"
        );
    }

    // Final-state equivalence, via the sharded store's own routing.
    for key in 0..KEYS {
        let s = baseline.inner().get(&[key]).unwrap();
        let b = sharded.get(&[key]).unwrap();
        assert_eq!(
            b, s,
            "{label} shards={shards} batch={batch}: final state differs at key {key}"
        );
    }
    if sharded.supports_scan() {
        assert_eq!(
            sharded.scan(&[0], &[KEYS]).unwrap(),
            baseline.inner().scan(&[0], &[KEYS]).unwrap(),
            "{label} shards={shards} batch={batch}: scans differ"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sharding_is_invisible_on_every_store(ops in op_seq()) {
        for shards in SHARD_COUNTS {
            for batch in BATCH_SIZES {
                assert_equivalent(|_| MemStore::new(), &ops, shards, batch, "mem");
                assert_equivalent(
                    |_| HashLogStore::new(HashLogConfig::small()),
                    &ops,
                    shards,
                    batch,
                    "hashlog",
                );
                assert_equivalent(
                    |i| BTreeStore::open(tmp(&format!("btree-{i}.db")), BTreeConfig::small())
                        .unwrap(),
                    &ops,
                    shards,
                    batch,
                    "btree",
                );
                // Sync WAL + tiny memtable: per-shard group commit and
                // memtable rotation both fire inside the check.
                assert_equivalent(
                    |i| {
                        let dir = tmp(&format!("lsm-{i}"));
                        std::fs::create_dir_all(&dir).unwrap();
                        let cfg = LsmConfig {
                            wal_sync: true,
                            memtable_bytes: 2 << 10,
                            ..LsmConfig::small()
                        };
                        let cfg = if i == usize::MAX {
                            cfg
                        } else {
                            cfg.with_shard_id(i as u64)
                        };
                        LsmStore::open(&dir, cfg).unwrap()
                    },
                    &ops,
                    shards,
                    batch,
                    "lsm",
                );
            }
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-shard-eq-{}", std::process::id())),
        );
    }
}
