//! Partition-map and live-migration equivalence properties.
//!
//! Two invariants keep resharding honest:
//!
//! 1. **Identity router compatibility** — a `ShardedStore` built with an
//!    explicit identity [`SlotTable`] must route and answer exactly like
//!    the legacy `fnv1a(key) % shards` store, for every backend and
//!    batch size. The slot indirection is a representation change, not
//!    a semantic one.
//! 2. **Migration invisibility** — migrating half of a shard's slots to
//!    another shard mid-sequence must leave per-op results and final
//!    state identical to an unmigrated twin fed the same ops. Clients
//!    never observe the copy window.

use std::sync::Arc;

use proptest::prelude::*;

use gadget_btree::{BTreeConfig, BTreeStore};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{shard_of, MemStore, Router, ShardedStore, SlotTable, StateStore};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_types::Op;

/// Shard counts under test — all divide `SLOTS` (2520), so the identity
/// table is bit-compatible with the legacy modulo router.
const SHARD_COUNTS: [usize; 3] = [2, 7, 8];

const BATCH_SIZES: [usize; 2] = [1, 64];

/// Single-byte keys 0..16: small enough to revisit (overwrites, merge
/// stacking, delete-then-get) and to enumerate for final-state checks.
const KEYS: u8 = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gadget-reshard-eq-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{name}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn op_seq() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..KEYS, 1u8..32), 1..300).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key];
                let payload = vec![(i * 31 + 7) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

fn apply_chunked(store: &ShardedStore, ops: &[Op], batch: usize) -> Vec<gadget_kv::BatchResult> {
    let mut got = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(batch) {
        got.extend(store.apply_batch(chunk).unwrap());
    }
    got
}

/// Property 1: explicit identity slot table == legacy modulo routing.
fn assert_identity_router_equivalent<S: StateStore + 'static>(
    mk: impl Fn(usize) -> S,
    ops: &[Op],
    shards: usize,
    batch: usize,
    label: &str,
) {
    let stores = |base: usize| -> Vec<Arc<dyn StateStore>> {
        (0..shards)
            .map(|i| Arc::new(mk(base + i)) as Arc<dyn StateStore>)
            .collect()
    };
    let legacy = ShardedStore::from_stores(stores(0)).unwrap();
    let table = Arc::new(SlotTable::identity(shards));
    let routed = ShardedStore::from_stores_with_router(stores(100), table.clone()).unwrap();

    // The map itself routes like the legacy modulo for these counts.
    for key in 0..KEYS {
        assert_eq!(
            table.route(&[key]),
            shard_of(&[key], shards),
            "{label} shards={shards}: slot table disagrees with legacy modulo at key {key}"
        );
    }

    assert_eq!(
        apply_chunked(&routed, ops, batch),
        apply_chunked(&legacy, ops, batch),
        "{label} shards={shards} batch={batch}: per-op results differ"
    );
    for key in 0..KEYS {
        assert_eq!(
            routed.get(&[key]).unwrap(),
            legacy.get(&[key]).unwrap(),
            "{label} shards={shards} batch={batch}: final state differs at key {key}"
        );
    }
}

/// Property 2: a mid-sequence slot migration is invisible. `mk` must
/// build scannable backends — migration copies by scanning the source.
fn assert_migration_invisible<S: StateStore + 'static>(
    mk: impl Fn(usize) -> S,
    ops: &[Op],
    shards: usize,
    batch: usize,
    label: &str,
) {
    let stores = |base: usize| -> Vec<Arc<dyn StateStore>> {
        (0..shards)
            .map(|i| Arc::new(mk(base + i)) as Arc<dyn StateStore>)
            .collect()
    };
    let twin = ShardedStore::from_stores(stores(0)).unwrap();
    let moved = ShardedStore::from_stores(stores(100)).unwrap();

    let mid = ops.len() / 2;
    let (first, second) = ops.split_at(mid);
    assert_eq!(
        apply_chunked(&moved, first, batch),
        apply_chunked(&twin, first, batch),
        "{label}: stores diverged before the migration"
    );

    // Move half of shard 0's slots to the last shard, mid-sequence.
    let donor_slots = SlotTable::from_router(moved.router().as_ref()).slots_of(0);
    let moving: Vec<usize> = donor_slots[..donor_slots.len() / 2].to_vec();
    let event = moved
        .migrate_slots(&moving, shards - 1, mid as u64)
        .unwrap();
    assert_eq!(event.slots, moving.len());
    assert_eq!(event.map_version, 2, "epoch bumped exactly once");
    assert_eq!(moved.reshard_events().len(), 1);
    assert_ne!(
        moved.partition_digest(),
        twin.partition_digest(),
        "{label}: digest must change when the map changes"
    );

    assert_eq!(
        apply_chunked(&moved, second, batch),
        apply_chunked(&twin, second, batch),
        "{label} shards={shards} batch={batch}: post-migration results differ"
    );
    for key in 0..KEYS {
        assert_eq!(
            moved.get(&[key]).unwrap(),
            twin.get(&[key]).unwrap(),
            "{label} shards={shards} batch={batch}: final state differs at key {key}"
        );
    }
    if moved.supports_scan() {
        assert_eq!(
            moved.scan(&[0], &[KEYS]).unwrap(),
            twin.scan(&[0], &[KEYS]).unwrap(),
            "{label} shards={shards} batch={batch}: scans differ after migration"
        );
    }
}

/// Property 2b: a factory-backed split (brand-new shard) is invisible.
fn assert_split_invisible(ops: &[Op], batch: usize) {
    let twin =
        ShardedStore::from_factory(2, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
            .unwrap();
    let split =
        ShardedStore::from_factory(2, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
            .unwrap();

    let mid = ops.len() / 2;
    let (first, second) = ops.split_at(mid);
    apply_chunked(&twin, first, batch);
    apply_chunked(&split, first, batch);

    let event = split.reshard(0, 2, mid as u64).unwrap();
    assert_eq!((event.from, event.to), (0, 2));
    assert_eq!(split.shard_count(), 3, "split grew the fleet");

    assert_eq!(
        apply_chunked(&split, second, batch),
        apply_chunked(&twin, second, batch),
        "split batch={batch}: post-split results differ"
    );
    for key in 0..KEYS {
        assert_eq!(
            split.get(&[key]).unwrap(),
            twin.get(&[key]).unwrap(),
            "split batch={batch}: final state differs at key {key}"
        );
    }
}

fn lsm_cfg(i: usize) -> LsmConfig {
    LsmConfig {
        wal_sync: false,
        memtable_bytes: 2 << 10,
        ..LsmConfig::small()
    }
    .with_shard_id(i as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn identity_slot_table_matches_legacy_routing(ops in op_seq()) {
        for shards in SHARD_COUNTS {
            for batch in BATCH_SIZES {
                assert_identity_router_equivalent(
                    |_| MemStore::new(), &ops, shards, batch, "mem");
                assert_identity_router_equivalent(
                    |_| HashLogStore::new(HashLogConfig::small()),
                    &ops, shards, batch, "hashlog");
                assert_identity_router_equivalent(
                    |i| BTreeStore::open(tmp(&format!("btree-{i}.db")), BTreeConfig::small())
                        .unwrap(),
                    &ops, shards, batch, "btree");
                assert_identity_router_equivalent(
                    |i| {
                        let dir = tmp(&format!("lsm-{i}"));
                        std::fs::create_dir_all(&dir).unwrap();
                        LsmStore::open(&dir, lsm_cfg(i)).unwrap()
                    },
                    &ops, shards, batch, "lsm");
            }
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-reshard-eq-{}", std::process::id())),
        );
    }

    #[test]
    fn live_migration_is_invisible_to_clients(ops in op_seq()) {
        // Scannable backends only: migration copies the donor by scan,
        // so the append-only hashlog is excluded by construction.
        for batch in BATCH_SIZES {
            assert_migration_invisible(|_| MemStore::new(), &ops, 4, batch, "mem");
            assert_split_invisible(&ops, batch);
            assert_migration_invisible(
                |i| BTreeStore::open(tmp(&format!("mig-btree-{i}.db")), BTreeConfig::small())
                    .unwrap(),
                &ops, 4, batch, "btree");
            assert_migration_invisible(
                |i| {
                    let dir = tmp(&format!("mig-lsm-{i}"));
                    std::fs::create_dir_all(&dir).unwrap();
                    LsmStore::open(&dir, lsm_cfg(i)).unwrap()
                },
                &ops, 4, batch, "lsm");
        }
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("gadget-reshard-eq-{}", std::process::id())),
        );
    }
}
