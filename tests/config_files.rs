//! Every shipped example config must parse and run.

use gadget::core::GadgetConfig;

#[test]
fn configs_are_valid() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("configs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("configs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e != "json").unwrap_or(true) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable config");
        let mut config: GadgetConfig =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(
            config.operator_kind().is_some(),
            "{path:?}: unknown operator {}",
            config.operator
        );
        // Run a scaled-down version of each config end to end.
        match &mut config.source {
            gadget::core::SourceConfig::Synthetic(g) => g.events = 2_000,
            gadget::core::SourceConfig::Dataset { events, .. } => *events = 2_000,
        }
        let trace = config.run();
        assert!(!trace.is_empty(), "{path:?} produced an empty trace");
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} configs found");
}
