//! Offline stand-in for `crossbeam`.
//!
//! The workspace declares crossbeam as a dependency but does not use any
//! of its APIs; this empty crate satisfies the dependency graph without
//! registry access.
