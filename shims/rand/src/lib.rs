//! Offline stand-in for the `rand` crate (0.8 API shape).
//!
//! Provides [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//! seeded via splitmix64 — together with the [`Rng`], [`RngCore`] and
//! [`SeedableRng`] traits and [`seq::SliceRandom`]. The value stream
//! differs from upstream rand; gadget only relies on determinism given
//! a seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy (time-derived here).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a bounded interval. Blanket impls of
/// [`SampleRange`] over this trait let the range element type and the
/// result type unify during inference (matching upstream rand).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform value in `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform `u64` in `[0, span)` (128-bit multiply-shift; bias is
/// negligible for benchmark workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_below(rng, span as u64) as u128;
    }
    loop {
        let v = u128::sample_standard(rng);
        if v < span * (u128::MAX / span) {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = (hi as $u).wrapping_sub(lo as $u) as u128;
                let span = if inclusive { width + 1 } else { width };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_below_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let width = hi.wrapping_sub(lo);
        if inclusive && width == u128::MAX {
            return u128::sample_standard(rng);
        }
        let span = if inclusive { width + 1 } else { width };
        lo.wrapping_add(uniform_below_u128(rng, span))
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let v = lo + f64::sample_standard(rng) * (hi - lo);
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let v = lo + f32::sample_standard(rng) * (hi - lo);
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenience re-export matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=8);
            assert!((1..=8).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
