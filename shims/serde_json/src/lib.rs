//! Offline stand-in for `serde_json`: a JSON parser and writer over the
//! serde shim's [`Value`] model.

use std::fmt;

pub use serde::Value;

/// JSON parse/serialize error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

/// Serializes a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON byte slice into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-trippable form.
                let s = f.to_string();
                out.push_str(&s);
                // Keep a float marker so integral floats stay floats on
                // re-parse only when precision demands it; JSON readers
                // treat `1` and `1.0` identically for f64 targets.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.parse_unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 code point. Validate
                    // only its own bytes — running `from_utf8` over the
                    // whole remaining input here made parsing quadratic
                    // in document size.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.error("invalid UTF-8 in string")),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return Err(self.error("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char> {
        // self.pos is at the `u`.
        self.pos += 1;
        let hi = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.parse_hex4()?;
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u128>() {
                    if let Ok(i) = i128::try_from(u) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(0.99), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_prints_with_indent() {
        let v = Value::Object(vec![("k".into(), Value::UInt(3))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": 3\n}");
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Value = from_str(r#"{"s": "aA\n", "n": -5, "f": 1e3, "arr": [1, 2]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n"));
        assert_eq!(v.get("n"), Some(&Value::Int(-5)));
        assert_eq!(v.get("f"), Some(&Value::Float(1000.0)));
    }

    #[test]
    fn u128_survives() {
        let text = to_string(&u128::MAX).unwrap();
        let back: u128 = from_str(&text).unwrap();
        assert_eq!(back, u128::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
