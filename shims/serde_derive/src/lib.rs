//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` proc
//! macros with no syn/quote dependency: the item's token stream is parsed
//! directly into a small shape model, and the impl is generated as source
//! text. Deliberately supports only the shapes and attributes the gadget
//! workspace uses:
//!
//! * named-field structs, newtype structs;
//! * enums with unit, newtype, and struct variants;
//! * container attrs `#[serde(tag = "...")]` (internal tagging) and
//!   `#[serde(rename_all = "snake_case")]`;
//! * field attrs `#[serde(default)]` and `#[serde(default = "path")]`.
//!
//! Field *types* are never inspected: generated deserialization code
//! relies on type inference through `serde::Deserialize::from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&container),
        Mode::Deserialize => gen_deserialize(&container),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!(
            "serde_derive shim produced invalid code for `{}`: {e}",
            container.name
        )),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Shape model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    /// `#[serde(tag = "...")]`: internally tagged enum.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]`.
    snake_case: bool,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Clone, PartialEq)]
enum FieldDefault {
    Required,
    Std,
    Path(String),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

/// Container- or field-level `#[serde(...)]` settings.
#[derive(Default)]
struct SerdeAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    default: Option<FieldDefault>,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                if arity == 1 {
                    Data::NewtypeStruct
                } else {
                    return Err(format!(
                        "serde_derive shim: tuple struct `{name}` with {arity} fields is not supported"
                    ));
                }
            }
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => return Err(format!("cannot derive serde impls for `{other}`")),
    };

    Ok(Container {
        name,
        tag: attrs.tag,
        snake_case: match attrs.rename_all.as_deref() {
            None => false,
            Some("snake_case") => true,
            Some(other) => {
                return Err(format!(
                    "serde_derive shim: rename_all = \"{other}\" is not supported"
                ))
            }
        },
        data,
    })
}

/// Parses and consumes leading `#[...]` attributes, extracting serde ones.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let group = match tokens.get(*pos + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("malformed attribute: {other:?}")),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                other => return Err(format!("malformed #[serde(...)] attribute: {other:?}")),
            };
            parse_serde_args(args, &mut attrs)?;
        }
        *pos += 2;
    }
    Ok(attrs)
}

/// Parses the inside of `#[serde(...)]`: comma-separated `name` or
/// `name = "literal"` items.
fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unexpected token in #[serde(...)]: {other}")),
        };
        pos += 1;
        let value = if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            match tokens.get(pos) {
                Some(TokenTree::Literal(lit)) => {
                    pos += 1;
                    Some(unquote(&lit.to_string())?)
                }
                other => return Err(format!("expected string after `{key} =`: {other:?}")),
            }
        } else {
            None
        };
        match (key.as_str(), &value) {
            ("tag", Some(v)) => attrs.tag = Some(v.clone()),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v.clone()),
            ("default", None) => attrs.default = Some(FieldDefault::Std),
            ("default", Some(v)) => attrs.default = Some(FieldDefault::Path(v.clone())),
            _ => {
                return Err(format!(
                    "serde_derive shim: unsupported serde attribute `{key}`"
                ))
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(())
}

fn unquote(lit: &str) -> Result<String, String> {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(format!("expected string literal, found {lit}"))
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Parses named fields: `[attrs] [vis] name : Type, ...`. Types are
/// skipped, not inspected; angle-bracket depth is tracked so commas
/// inside generics don't split fields.
fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`: {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            default: attrs.default.unwrap_or(FieldDefault::Required),
        });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (or end).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '-' => {
                    // `->` in fn types: skip the `>` so it doesn't close a generic.
                    if matches!(tokens.get(*pos + 1), Some(TokenTree::Punct(n)) if n.as_char() == '>')
                    {
                        *pos += 1;
                    }
                }
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => count += 1,
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        parse_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let arity = count_tuple_fields(g.stream());
                if arity != 1 {
                    return Err(format!(
                        "serde_derive shim: tuple variant `{name}` with {arity} fields is not supported"
                    ));
                }
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while pos < tokens.len()
                && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
            {
                pos += 1;
            }
        }
        variants.push(Variant { name, shape });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Name handling
// ---------------------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

impl Container {
    fn variant_label(&self, variant: &str) -> String {
        if self.snake_case {
            snake_case(variant)
        } else {
            variant.to_string()
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn fields_to_object(fields: &[Field], access_prefix: &str) -> String {
    let members: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&{p}{n}))",
                n = f.name,
                p = access_prefix
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        members.join(", ")
    )
}

/// `field_name: <value drawn from __obj or default>` initializers.
fn fields_from_object(fields: &[Field], context: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = match &f.default {
                FieldDefault::Required => format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field({:?}, {:?}))",
                    f.name, context
                ),
                FieldDefault::Std => "::std::default::Default::default()".to_string(),
                FieldDefault::Path(path) => format!("{path}()"),
            };
            format!(
                "{n}: match ::serde::find_field(__obj, {n:?}) {{ \
                   ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::std::option::Option::None => {fallback}, \
                 }}",
                n = f.name
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => fields_to_object(fields, "self."),
        Data::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let label = c.variant_label(&v.name);
                    match (&c.tag, &v.shape) {
                        (None, VariantShape::Unit) => format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from({label:?})),",
                            v = v.name
                        ),
                        (None, VariantShape::Newtype) => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from({label:?}), ::serde::Serialize::to_value(__f0))]),",
                            v = v.name
                        ),
                        (None, VariantShape::Struct(fields)) => {
                            let pat: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{v} {{ {pat} }} => ::serde::Value::Object(::std::vec![\
                                   (::std::string::String::from({label:?}), {inner})]),",
                                v = v.name,
                                pat = pat.join(", "),
                                inner = fields_to_object(fields, "")
                            )
                        }
                        (Some(tag), VariantShape::Unit) => format!(
                            "{name}::{v} => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from({tag:?}), \
                                ::serde::Value::Str(::std::string::String::from({label:?})))]),",
                            v = v.name
                        ),
                        (Some(tag), VariantShape::Newtype) => format!(
                            "{name}::{v}(__f0) => {{ \
                               let mut __m = ::std::vec![(::std::string::String::from({tag:?}), \
                                 ::serde::Value::Str(::std::string::String::from({label:?})))]; \
                               match ::serde::Serialize::to_value(__f0) {{ \
                                 ::serde::Value::Object(__inner) => __m.extend(__inner), \
                                 _ => panic!(\"internally tagged newtype variant must serialize to an object\"), \
                               }} \
                               ::serde::Value::Object(__m) \
                             }},",
                            v = v.name
                        ),
                        (Some(tag), VariantShape::Struct(fields)) => {
                            let pat: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let members: Vec<String> = std::iter::once(format!(
                                "(::std::string::String::from({tag:?}), \
                                 ::serde::Value::Str(::std::string::String::from({label:?})))"
                            ))
                            .chain(fields.iter().map(|f| {
                                format!(
                                    "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&{n}))",
                                    n = f.name
                                )
                            }))
                            .collect();
                            format!(
                                "{name}::{v} {{ {pat} }} => ::serde::Value::Object(::std::vec![{members}]),",
                                v = v.name,
                                pat = pat.join(", "),
                                members = members.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all, unused_mut)] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => format!(
            "let __obj = match __v.as_object() {{ \
               ::std::option::Option::Some(__m) => __m, \
               ::std::option::Option::None => \
                 return ::std::result::Result::Err(::serde::Error::expected(\"object\", __v, {name:?})), \
             }}; \
             ::std::result::Result::Ok({name} {{ {inits} }})",
            inits = fields_from_object(fields, name)
        ),
        Data::NewtypeStruct => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Data::Enum(variants) => match &c.tag {
            None => gen_deserialize_external(c, variants, name),
            Some(tag) => gen_deserialize_internal(c, variants, name, tag),
        },
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn gen_deserialize_external(c: &Container, variants: &[Variant], name: &str) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "{label:?} => ::std::result::Result::Ok({name}::{v}),",
                label = c.variant_label(&v.name),
                v = v.name
            )
        })
        .collect();
    let keyed_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let label = c.variant_label(&v.name);
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Newtype => Some(format!(
                    "{label:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),",
                    v = v.name
                )),
                VariantShape::Struct(fields) => Some(format!(
                    "{label:?} => {{ \
                       let __obj = match __inner.as_object() {{ \
                         ::std::option::Option::Some(__m) => __m, \
                         ::std::option::Option::None => \
                           return ::std::result::Result::Err(::serde::Error::expected(\"object\", __inner, {name:?})), \
                       }}; \
                       ::std::result::Result::Ok({name}::{v} {{ {inits} }}) \
                     }},",
                    v = v.name,
                    inits = fields_from_object(fields, name)
                )),
            }
        })
        .collect();
    format!(
        "match __v {{ \
           ::serde::Value::Str(__s) => match __s.as_str() {{ \
             {unit_arms} \
             __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), \
           }}, \
           ::serde::Value::Object(__members) if __members.len() == 1 => {{ \
             let (__tag, __inner) = &__members[0]; \
             match __tag.as_str() {{ \
               {keyed_arms} \
               __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), \
             }} \
           }} \
           __other => ::std::result::Result::Err(::serde::Error::expected(\
             \"string or single-key object\", __other, {name:?})), \
         }}",
        unit_arms = unit_arms.join(" "),
        keyed_arms = keyed_arms.join(" ")
    )
}

fn gen_deserialize_internal(c: &Container, variants: &[Variant], name: &str, tag: &str) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let label = c.variant_label(&v.name);
            match &v.shape {
                VariantShape::Unit => format!(
                    "{label:?} => ::std::result::Result::Ok({name}::{v}),",
                    v = v.name
                ),
                // The newtype payload deserializes from the whole object;
                // the extra tag member is ignored by the inner struct.
                VariantShape::Newtype => format!(
                    "{label:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__v)?)),",
                    v = v.name
                ),
                VariantShape::Struct(fields) => format!(
                    "{label:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                    v = v.name,
                    inits = fields_from_object(fields, name)
                ),
            }
        })
        .collect();
    format!(
        "let __obj = match __v.as_object() {{ \
           ::std::option::Option::Some(__m) => __m, \
           ::std::option::Option::None => \
             return ::std::result::Result::Err(::serde::Error::expected(\"object\", __v, {name:?})), \
         }}; \
         let __tag = match ::serde::find_field(__obj, {tag:?}).and_then(::serde::Value::as_str) {{ \
           ::std::option::Option::Some(__t) => __t, \
           ::std::option::Option::None => \
             return ::std::result::Result::Err(::serde::Error::missing_field({tag:?}, {name:?})), \
         }}; \
         match __tag {{ \
           {arms} \
           __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), \
         }}",
        arms = arms.join(" ")
    )
}
