//! Offline stand-in for `parking_lot`, built on `std::sync`.
//!
//! Matches the parking_lot API shape gadget relies on: guards are not
//! `Result`s, poisoning is transparently ignored (a panicking holder does
//! not poison the lock for everyone else), and [`Condvar::wait_for`]
//! takes `&mut MutexGuard` instead of consuming the guard.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily relinquish it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard relinquished")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard relinquished")
    }
}

/// A reader-writer lock whose guards are not `Result`s.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`] by mutable reference.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard relinquished");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard relinquished");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let _ = cv.wait_for(&mut g, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*g);
    }
}
