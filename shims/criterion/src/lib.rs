//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with criterion's API shape:
//! benchmark groups, `bench_function`, `iter`, `iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is
//! deliberately simple — warm up, then time batches until a minimum
//! measurement window is filled, and report the median per-iteration
//! time — but it is real measurement, good enough for relative
//! comparisons such as instrumented-vs-bare overhead checks.

use std::time::{Duration, Instant};

/// Black-box hint: prevents the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle.
pub struct Criterion {
    /// Minimum measured time per sample.
    sample_window: Duration,
    /// Samples collected per benchmark (median is reported).
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_window: Duration::from_millis(25),
            samples: 7,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Standalone benchmark without a group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (window, samples) = (self.sample_window, self.samples);
        run_benchmark(&id.to_string(), window, samples, None, f);
        self
    }
}

/// Throughput annotation for a group (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility;
    /// mapped onto this harness's fixed sampling plan).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.clamp(3, 15);
        self
    }

    /// Sets expected per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.sample_window,
            self.criterion.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(
    label: &str,
    window: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    // Warmup sample plus measured samples.
    for sample in 0..=samples {
        let mut bencher = Bencher {
            window,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if sample == 0 || bencher.iters == 0 {
            continue;
        }
        per_iter.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    let spread = match (per_iter.first(), per_iter.last()) {
        (Some(lo), Some(hi)) if median > 0.0 => (hi - lo) / median * 100.0,
        _ => 0.0,
    };
    let mut line = format!("{label:<48} time: {median:>12.1} ns/iter  (±{spread:.0}%)");
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median > 0.0 && count > 0 {
            let rate = count as f64 / (median / 1e9);
            line.push_str(&format!("  {rate:>12.0} {unit}/s"));
        }
    }
    eprintln!("{line}");
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

/// Batch sizing for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input per routine call.
    PerIteration,
    /// Small batched inputs.
    SmallInput,
    /// Large batched inputs.
    LargeInput,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window fills.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < self.window {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            sample_window: Duration::from_micros(200),
            samples: 3,
        };
        let mut group = c.benchmark_group("shim-selftest");
        let mut total = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                total = total.wrapping_add(black_box(1));
                total
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }
}
