//! Offline stand-in for `serde`.
//!
//! Instead of the real serde's visitor architecture, this shim routes
//! everything through one self-describing [`Value`] model (a superset of
//! JSON: unsigned/signed 128-bit integers are first-class so histograms
//! with `u128` sums round-trip losslessly). [`Serialize`] converts into a
//! `Value`; [`Deserialize`] converts out of one. `serde_json` supplies
//! the text format on top.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) come from the
//! companion `serde_derive` shim and support the attribute subset gadget
//! uses: `#[serde(tag = "...")]`, `#[serde(rename_all = "snake_case")]`,
//! `#[serde(default)]`, and `#[serde(default = "path")]`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model used by the shim's serialization traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (covers every uint type up to `u128`).
    UInt(u128),
    /// Signed integer (only used for negative values in practice).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The members of an object, if this is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => u64::try_from(*u).ok(),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric contents as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| find_field(m, key))
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Finds an object member by name.
pub fn find_field<'a>(members: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// Type mismatch while deserializing `context`.
    pub fn expected(what: &str, got: &Value, context: &str) -> Self {
        Error::custom(format!(
            "expected {what} for {context}, found {}",
            got.kind()
        ))
    }

    /// Required object member absent.
    pub fn missing_field(field: &str, context: &str) -> Self {
        Error::custom(format!("missing field `{field}` in {context}"))
    }

    /// Enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, context: &str) -> Self {
        Error::custom(format!("unknown variant `{tag}` for {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim's [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim's [`Value`] model.
pub trait Deserialize: Sized {
    /// Deserializes a [`Value`] into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::expected("unsigned integer", other, stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u128)
                } else {
                    Value::Int(*self as i128)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::expected("integer", other, stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value, "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", value, "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other, "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(std::path::PathBuf::from(String::from_value(value)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other, "tuple")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other, "BTreeMap")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort members so serialized maps are deterministic.
        let mut members: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(members)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other, "HashMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs() as u128)),
            (
                "nanos".to_string(),
                Value::UInt(self.subsec_nanos() as u128),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, "Duration"))?;
        let secs = find_field(obj, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("secs", "Duration"))?;
        let nanos = find_field(obj, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("nanos", "Duration"))?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(u128::from_value(&u128::MAX.to_value()).unwrap(), u128::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&0.99f64.to_value()).unwrap(), 0.99);
        // Integral JSON numbers deserialize as floats too.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 0.5f64), (2, 1.5)];
        assert_eq!(Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_value(&opt.to_value()).unwrap(), opt);
        assert_eq!(Option::<String>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b"), None);
    }
}
