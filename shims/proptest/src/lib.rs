//! Offline stand-in for `proptest`.
//!
//! Implements the subset gadget's property tests use: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), range and `any`
//! strategies, `prop_map`, [`collection::vec`] / [`collection::btree_map`],
//! [`prop_oneof!`], [`Just`], and the `prop_assert*` macros.
//!
//! Cases are drawn by straightforward random sampling — no shrinking —
//! from an RNG seeded deterministically from the test function's name,
//! so failures reproduce across runs.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Next raw 64 bits (used by strategy implementations).
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Builds the deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng {
        inner: StdRng::seed_from_u64(h),
    }
}

/// Runner configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing clones of one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32
);

/// Full-domain strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Inclusive-exclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; sizes are an upper bound since
    /// duplicate keys collapse.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

/// The usual proptest prelude surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each `fn name(bindings) { body }` becomes a
/// `fn name()` running `cases` samples of the bound strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $crate::__proptest_bind!(__rng; $($args)*);
                    $body
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 1.5f64..2.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1.5..2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_in_range(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_covers_all_arms(choice in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(choice == 1 || choice == 2 || choice == 5 || choice == 6);
        }
    }

    #[test]
    fn runs_registered_cases() {
        ranges_respect_bounds();
        vec_sizes_in_range();
        oneof_covers_all_arms();
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
