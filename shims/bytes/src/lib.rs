//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer backed
//! by `Arc<[u8]>`. Only the API surface gadget uses is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1): clones share the same allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a sub-buffer covering the given range (copies the range).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other.data[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.to_vec(), b"hello".to_vec());
    }
}
